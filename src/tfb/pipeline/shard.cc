#include "tfb/pipeline/shard.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "tfb/base/status.h"
#include "tfb/obs/log.h"
#include "tfb/obs/metrics.h"
#include "tfb/obs/progress.h"
#include "tfb/obs/trace.h"
#include "tfb/pipeline/journal.h"
#include "tfb/pipeline/shard_worker.h"
#include "tfb/pipeline/telemetry.h"
#include "tfb/pipeline/wire.h"

namespace tfb::pipeline {
namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Shutdown self-pipe. Signal handlers may only write() one byte — the
// coordinator's poll loop turns queued bytes into drain (1) or hard kill
// (2+). The pipe is process-lifetime: installed on first use, shared by
// RequestShardShutdown and the SIGINT/SIGTERM handlers.

std::atomic<int> g_shutdown_wfd{-1};
int g_shutdown_rfd = -1;

extern "C" void TfbShardShutdownHandler(int /*signo*/) {
  const int fd = g_shutdown_wfd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    const ssize_t n = write(fd, &byte, 1);
    (void)n;  // A full pipe already holds a pending wakeup.
  }
}

void EnsureShutdownPipe() {
  if (g_shutdown_wfd.load(std::memory_order_relaxed) >= 0) return;
  int fds[2];
  if (pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) return;
  g_shutdown_rfd = fds[0];
  g_shutdown_wfd.store(fds[1], std::memory_order_release);
}

std::size_t DrainShutdownPipe() {
  if (g_shutdown_rfd < 0) return 0;
  std::size_t total = 0;
  char buf[64];
  ssize_t n;
  while ((n = read(g_shutdown_rfd, buf, sizeof(buf))) > 0) {
    total += static_cast<std::size_t>(n);
  }
  return total;
}

// Leftover "<stem>.seg*" files next to the journal (or temp segment base):
// the durable remains of a previous run that crashed before its merge.
std::vector<std::string> ExistingSegments(const std::string& base) {
  std::string dir = ".";
  std::string stem = base;
  const std::size_t slash = base.find_last_of('/');
  if (slash != std::string::npos) {
    dir = slash == 0 ? "/" : base.substr(0, slash);
    stem = base.substr(slash + 1);
  }
  const std::string prefix = stem + ".seg";
  std::vector<std::string> out;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) {
    // A resume that cannot list the journal directory would silently drop
    // every crashed-run segment; surface the why (usually permissions).
    obs::DefaultLogger().Warn(
        "shard: cannot scan for leftover segments",
        {{"dir", dir}, {"errno", std::to_string(errno)},
         {"error", std::strerror(errno)}});
    return out;
  }
  while (dirent* e = readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() > prefix.size() &&
        name.compare(0, prefix.size(), prefix) == 0) {
      out.push_back(dir == "/" ? "/" + name : dir + "/" + name);
    }
  }
  closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Coordinator-side state.

struct Shard {
  std::size_t id = 0;
  std::vector<std::size_t> slots;  // Task indices, ascending.
  std::size_t attempts = 0;        // Death-burning dispatch count.
};

// One worker *connection* — the unit the lease epoch is attached to. A
// worker process may own several connections over its life (reconnects);
// each gets a fresh epoch and its own journal segment.
struct Connection {
  std::unique_ptr<Transport> transport;
  std::uint64_t epoch = 0;  // Assigned at WELCOME; 0 while unwelcomed.
  pid_t pid = -1;           // From HELLO; matches a Child for forked workers.
  Clock::time_point last_seen{};
  bool welcomed = false;
  bool has_shard = false;
  Shard shard;
  std::unordered_set<std::size_t> started;  // Started, not yet finished.
  bool quit_sent = false;
  bool dead = false;
  std::string segment_path;  // "<base>.seg<epoch>".

  // Fleet telemetry (see telemetry.h): clock-offset probing state and the
  // coordinator-clock start of the currently granted shard.
  std::size_t pings_sent = 0;
  std::vector<PingSample> ping_samples;
  double clock_offset_us = 0.0;
  double grant_start_us = 0.0;
};

// What the coordinator knows about one worker *process* (keyed by pid, so
// it survives reconnects): the last applied telemetry batch number — the
// dedup fence that keeps a resent DONE blob from double-counting — and the
// latest self-reported usage for /status.
struct WorkerRecord {
  std::uint64_t last_seq = 0;
  std::uint64_t tasks_completed = 0;
  double cpu_seconds = 0.0;
  double peak_rss_mb = 0.0;
};

// One fork()ed worker process (socketpair workers and local TCP workers).
// External tfb_worker processes have no Child record.
struct Child {
  pid_t pid = -1;
  std::size_t spawn_index = 0;
  bool exited = false;
  bool quit_expected = false;  // QUIT sent (or shutdown): exit is not a death.
};

}  // namespace

void RequestShardShutdown() {
  EnsureShutdownPipe();
  TfbShardShutdownHandler(0);
}

bool ShardCoordinator::BindListener(std::string* error) {
  if (shard_options_.transport != ShardTransport::kTcp) return true;
  if (listener_ != nullptr) return true;
  listener_ = TcpListener::Listen(shard_options_.listen_host,
                                  shard_options_.listen_port, error);
  if (listener_ == nullptr) return false;
  fcntl(listener_->fd(), F_SETFL, O_NONBLOCK);
  return true;
}

std::uint16_t ShardCoordinator::listen_port() const {
  return listener_ != nullptr ? listener_->port() : 0;
}

std::vector<ResultRow> ShardCoordinator::Run(
    const std::vector<BenchmarkTask>& tasks) {
  stats_ = ShardRunStats{};
  const std::size_t total = tasks.size();
  std::vector<ResultRow> rows(total);
  std::vector<bool> adopted(total, false);
  const bool observed = obs::Enabled();
  obs::Registry& registry = obs::DefaultRegistry();
  obs::ProgressTracker& tracker = obs::DefaultProgressTracker();

  const bool tcp = shard_options_.transport == ShardTransport::kTcp;
  // Whether this coordinator forks its own workers (always, except a pure
  // listen-only TCP run fed by external tfb_worker processes).
  const bool spawning = !tcp || shard_options_.spawn_workers;
  const char* transport_name = tcp ? "tcp" : "socketpair";

  if (tcp) {
    std::string error;
    if (!BindListener(&error)) {
      obs::DefaultLogger().Error("shard: cannot bind TCP listener",
                                 {{"error", error}});
      for (std::size_t slot = 0; slot < total; ++slot) {
        rows[slot].dataset = tasks[slot].dataset;
        rows[slot].method = tasks[slot].method;
        rows[slot].horizon = tasks[slot].horizon;
        rows[slot].ok = false;
        rows[slot].error =
            base::Status::Internal("shard listener bind failed: " + error)
                .ToString();
      }
      return rows;
    }
  }

  // --- Segment base: next to the journal, or in a temp dir without one ---
  const std::string journal_path = runner_options_.journal_path;
  std::string temp_dir;
  std::string segment_base = journal_path;
  if (segment_base.empty()) {
    char tmpl[] = "/tmp/tfb-shard-XXXXXX";
    if (mkdtemp(tmpl) != nullptr) {
      temp_dir = tmpl;
      segment_base = temp_dir + "/journal";
    } else {
      segment_base = "tfb-shard-journal";  // Degraded: cwd-local segments.
    }
  }

  // --- Resume: adopt journaled rows, scavenging leftover segments of a
  // crashed previous run into the journal first (crash-safe recovery) ---
  std::vector<ResultRow> prior_rows;
  const std::vector<std::string> leftover = ExistingSegments(segment_base);
  if (!journal_path.empty() && runner_options_.resume) {
    std::vector<std::string> paths;
    paths.reserve(leftover.size() + 1);
    paths.push_back(journal_path);
    paths.insert(paths.end(), leftover.begin(), leftover.end());
    prior_rows = LoadJournalSegments(paths);
    if (!leftover.empty()) {
      stats_.scavenged_segments = leftover.size();
      obs::DefaultLogger().Info(
          "shard resume: scavenged leftover segments",
          {{"segments", std::to_string(leftover.size())},
           {"rows", std::to_string(prior_rows.size())}});
      // Fold segment-only rows into the journal before unlinking anything,
      // so a crash right here still loses no completed work.
      if (RewriteJournal(journal_path, prior_rows,
                         runner_options_.journal_fsync)) {
        for (const std::string& p : leftover) unlink(p.c_str());
      }
    }
  } else {
    // Not resuming: stale segments are garbage from an abandoned run, and
    // pre-existing journal rows keep their place (append semantics) without
    // exempting any task from execution.
    for (const std::string& p : leftover) unlink(p.c_str());
    if (!journal_path.empty()) prior_rows = LoadJournal(journal_path);
  }

  std::unordered_map<std::string, std::size_t> prior_by_key;
  for (std::size_t i = 0; i < prior_rows.size(); ++i) {
    prior_by_key.emplace(JournalKey(prior_rows[i].dataset,
                                    prior_rows[i].method,
                                    prior_rows[i].horizon),
                         i);
  }
  std::vector<std::size_t> pending;
  pending.reserve(total);
  std::vector<std::size_t> unmarshallable;
  std::size_t resumed = 0;
  for (std::size_t slot = 0; slot < total; ++slot) {
    const auto it =
        runner_options_.resume
            ? prior_by_key.find(JournalKey(tasks[slot].dataset,
                                           tasks[slot].method,
                                           tasks[slot].horizon))
            : prior_by_key.end();
    if (it != prior_by_key.end()) {
      rows[slot] = prior_rows[it->second];
      adopted[slot] = true;
      ++resumed;
    } else if (tcp && !TaskIsMarshallable(tasks[slot])) {
      // A task built around in-memory factories cannot cross the wire;
      // reject it up front (not journaled — a socketpair resume can still
      // execute it) instead of corrupting dispatch.
      ResultRow& row = rows[slot];
      row.dataset = tasks[slot].dataset;
      row.method = tasks[slot].method;
      row.horizon = tasks[slot].horizon;
      row.ok = false;
      row.error = base::Status::Internal(
                      "task with custom candidates cannot be marshalled "
                      "over the tcp transport")
                      .ToString();
      row.note = "rejected by shard coordinator (not marshallable)";
      unmarshallable.push_back(slot);
    } else {
      pending.push_back(slot);
    }
  }
  if (observed && resumed > 0) {
    registry.GetCounter("tfb_tasks_resumed_total")
        .Increment(static_cast<double>(resumed));
  }

  // --- Shard the pending slots ---
  std::size_t shard_size = shard_options_.shard_size;
  const std::size_t num_workers = std::max<std::size_t>(
      1, shard_options_.num_workers);
  if (shard_size == 0) {
    shard_size = std::clamp<std::size_t>(pending.size() / (4 * num_workers),
                                         1, 32);
  }
  std::deque<Shard> queue;
  std::size_t next_shard_id = 0;
  std::size_t shards_total = 0;
  for (std::size_t i = 0; i < pending.size(); i += shard_size) {
    Shard shard;
    shard.id = next_shard_id++;
    shard.slots.assign(
        pending.begin() + static_cast<std::ptrdiff_t>(i),
        pending.begin() +
            static_cast<std::ptrdiff_t>(std::min(i + shard_size,
                                                 pending.size())));
    queue.push_back(std::move(shard));
    ++shards_total;
  }

  tracker.SetDisplay(runner_options_.progress);
  tracker.BeginRun(total, resumed);
  for (const std::size_t slot : unmarshallable) {
    tracker.TaskFinished(tasks[slot].method, /*ok=*/false,
                         /*used_fallback=*/false, 0.0);
  }

  std::vector<bool> done_slot(total, false);
  std::size_t resolved = 0;  // Pending slots finished or quarantined.
  std::size_t executed = 0;  // ROW frames accepted.
  std::size_t shards_completed = 0;
  std::size_t shutdown_requests = 0;
  bool draining = false;
  bool hard_killed = false;
  double worker_cpu_seconds = 0.0;
  double worker_peak_rss_mb = 0.0;

  const std::size_t max_spawns =
      shard_options_.max_total_spawns > 0 ? shard_options_.max_total_spawns
                                          : 4 * num_workers;
  const std::string quarantine_segment = segment_base + ".segc";
  std::vector<std::string> segment_paths;  // Epoch order; merged first-wins.
  JournalOptions journal_options;
  journal_options.fsync_each_row = runner_options_.journal_fsync;

  std::vector<std::unique_ptr<Connection>> conns;
  std::vector<Child> children;
  std::size_t live_children = 0;
  std::uint64_t next_epoch = 1;
  // With observability on, the WELCOME options blob asks every worker to
  // collect spans + metric deltas and ship them back (telemetry.h).
  const std::string options_blob =
      SerializeWorkerOptions(runner_options_, observed);
  // One trace identity for the whole run; every dispatch executes under it
  // and every worker batch echoes it back.
  const std::uint64_t run_trace_id =
      (static_cast<std::uint64_t>(getpid()) << 32) ^
      static_cast<std::uint64_t>(
          Clock::now().time_since_epoch().count());
  std::unordered_map<std::uint64_t, WorkerRecord> fleet;
  const std::string connect_host = shard_options_.listen_host == "0.0.0.0"
                                       ? "127.0.0.1"
                                       : shard_options_.listen_host;

  auto live_connections = [&] {
    std::size_t n = 0;
    for (const auto& c : conns) {
      if (!c->dead && c->welcomed) ++n;
    }
    return n;
  };

  auto publish_shard_stats = [&] {
    obs::ShardStats s;
    s.enabled = true;
    s.transport = transport_name;
    s.workers = num_workers;
    s.workers_live = spawning ? live_children : live_connections();
    s.workers_spawned = stats_.workers_spawned;
    s.worker_deaths = stats_.worker_deaths;
    s.shards_total = shards_total;
    s.shards_completed = shards_completed;
    s.redispatches = stats_.redispatches;
    s.quarantined = stats_.quarantined;
    s.connections = stats_.connections;
    s.reconnects = stats_.reconnects;
    s.disconnects = stats_.disconnects;
    s.fenced_completions = stats_.fenced_completions;
    s.corrupt_frames = stats_.corrupt_frames;
    const auto now = Clock::now();
    for (const auto& cptr : conns) {
      const Connection& c = *cptr;
      if (!c.welcomed || c.dead) continue;
      obs::ShardStats::WorkerStatus w;
      w.pid = c.pid > 0 ? static_cast<std::uint64_t>(c.pid) : 0;
      w.heartbeat_age_seconds =
          std::chrono::duration<double>(now - c.last_seen).count();
      w.clock_offset_us = c.clock_offset_us;
      const auto it = fleet.find(w.pid);
      if (it != fleet.end()) {
        w.tasks_completed = it->second.tasks_completed;
        w.cpu_seconds = it->second.cpu_seconds;
        w.peak_rss_mb = it->second.peak_rss_mb;
      }
      s.fleet.push_back(w);
    }
    tracker.SetShardStats(s);
    if (observed) {
      registry.GetGauge("tfb_shard_workers_live")
          .Set(static_cast<double>(s.workers_live));
    }
  };

  auto make_loop_config = [&](std::size_t spawn_index) {
    WorkerLoopConfig cfg;
    cfg.spawn_index = spawn_index;
    cfg.fault_kill_worker = shard_options_.fault_kill_worker;
    cfg.fault_kill_after_tasks = shard_options_.fault_kill_after_tasks;
    cfg.fault_kill_signal = shard_options_.fault_kill_signal;
    cfg.heartbeat_seconds = shard_options_.heartbeat_seconds;
    cfg.retry_backoff_ms = runner_options_.retry_backoff_ms;
    cfg.retry_backoff_max_ms = runner_options_.retry_backoff_max_ms;
    cfg.chaos = shard_options_.chaos;
    return cfg;
  };

  // Forked children inherit every coordinator-side descriptor; keeping a
  // sibling's fd open would mask its EOF from the coordinator forever, and
  // an inherited listener would keep the port alive past the coordinator.
  auto close_inherited_in_child = [&] {
    for (const auto& c : conns) {
      if (!c->dead && c->transport != nullptr && c->transport->fd() >= 0) {
        close(c->transport->fd());
      }
    }
    if (listener_ != nullptr) listener_->Close();
  };

  auto spawn_worker = [&]() -> bool {
    if (!spawning) return false;
    if (stats_.workers_spawned >= max_spawns) {
      stats_.spawn_budget_exhausted = true;
      return false;
    }
    const std::size_t spawn_index = stats_.workers_spawned;
    pid_t pid = -1;
    if (!tcp) {
      int fds[2];
      if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return false;
      pid = fork();
      if (pid < 0) {
        close(fds[0]);
        close(fds[1]);
        return false;
      }
      if (pid == 0) {
        close(fds[0]);
        close_inherited_in_child();
        _exit(RunSocketpairWorker(fds[1], make_loop_config(spawn_index),
                                  tasks));
      }
      close(fds[1]);
      fcntl(fds[0], F_SETFL, O_NONBLOCK);
      fcntl(fds[0], F_SETFD, FD_CLOEXEC);
      auto conn = std::make_unique<Connection>();
      conn->transport = MakeFdTransport(
          fds[0], "socketpair:" + std::to_string(spawn_index));
      conn->pid = pid;
      conn->last_seen = Clock::now();
      conns.push_back(std::move(conn));
    } else {
      const std::uint16_t port = listener_->port();
      pid = fork();
      if (pid < 0) return false;
      if (pid == 0) {
        close_inherited_in_child();
        TcpWorkerOptions worker_options;
        worker_options.host = connect_host;
        worker_options.port = port;
        worker_options.loop = make_loop_config(spawn_index);
        _exit(RunTcpShardWorker(worker_options));
      }
    }
    children.push_back(Child{pid, spawn_index, false, false});
    ++stats_.workers_spawned;
    ++live_children;
    if (observed) {
      registry.GetCounter("tfb_shard_workers_spawned_total").Increment();
    }
    return true;
  };

  auto find_child = [&](pid_t pid) -> Child* {
    if (pid < 0) return nullptr;
    for (Child& child : children) {
      if (child.pid == pid) return &child;
    }
    return nullptr;
  };

  // Called exactly once per child when its exit is first observed (an EOF
  // fence or the WNOHANG sweep). Owns rusage accounting, death stats, and
  // the replacement-spawn decision.
  auto reap_child = [&](Child& child, int status, const struct rusage& usage,
                        bool from_heartbeat) {
    child.exited = true;
    --live_children;
    // Exact per-child accounting from the kernel via wait4(2).
    const double cpu =
        static_cast<double>(usage.ru_utime.tv_sec) +
        static_cast<double>(usage.ru_utime.tv_usec) * 1e-6 +
        static_cast<double>(usage.ru_stime.tv_sec) +
        static_cast<double>(usage.ru_stime.tv_usec) * 1e-6;
    const double rss_mb = static_cast<double>(usage.ru_maxrss) / 1024.0;
    worker_cpu_seconds += cpu;
    worker_peak_rss_mb = std::max(worker_peak_rss_mb, rss_mb);
    if (observed) {
      registry.GetCounter("tfb_shard_worker_cpu_seconds_total")
          .Increment(cpu);
      registry.GetGauge("tfb_shard_worker_peak_rss_mb")
          .Set(worker_peak_rss_mb);
    }
    if (child.quit_expected) return;  // Clean, commanded exit.
    ++stats_.worker_deaths;
    if (from_heartbeat) ++stats_.heartbeat_kills;
    if (observed) {
      registry.GetCounter("tfb_shard_worker_deaths_total").Increment();
      if (from_heartbeat) {
        registry.GetCounter("tfb_shard_heartbeat_kills_total").Increment();
      }
    }
    obs::DefaultLogger().Warn(
        "shard: worker died",
        {{"pid", std::to_string(child.pid)},
         {"spawn", std::to_string(child.spawn_index)},
         {"via", from_heartbeat ? "heartbeat-timeout" : "exit"},
         {"status", std::to_string(status)}});
    // Replace the casualty while work remains and the budget allows.
    if (!draining && !hard_killed && resolved < pending.size()) {
      spawn_worker();
    }
  };

  auto sweep_children = [&] {
    for (Child& child : children) {
      if (child.exited) continue;
      int status = 0;
      struct rusage usage;
      std::memset(&usage, 0, sizeof(usage));
      const pid_t r = wait4(child.pid, &status, WNOHANG, &usage);
      if (r == child.pid) {
        reap_child(child, status, usage, /*from_heartbeat=*/false);
      }
    }
  };

  auto quarantine = [&](std::size_t slot, std::size_t deaths) {
    const BenchmarkTask& task = tasks[slot];
    ResultRow row;
    row.dataset = task.dataset;
    row.method = task.method;
    row.horizon = task.horizon;
    row.ok = false;
    row.error = base::Status::Crashed(
                    "poison task quarantined: killed its worker " +
                    std::to_string(deaths) + "x")
                    .ToString();
    row.note = "quarantined by shard coordinator";
    AppendJournal(quarantine_segment, row, journal_options);
    rows[slot] = row;
    done_slot[slot] = true;
    ++resolved;
    ++stats_.quarantined;
    tracker.TaskFinished(row.method, /*ok=*/false, /*used_fallback=*/false,
                         0.0);
    if (observed) {
      registry.GetCounter("tfb_shard_quarantined_total").Increment();
    }
    obs::DefaultLogger().Warn(
        "shard: poison task quarantined",
        {{"dataset", row.dataset},
         {"method", row.method},
         {"horizon", std::to_string(row.horizon)}});
  };

  // Tears one connection down and re-queues its unfinished work. The
  // consequences depend on *why* it died: a worker-process death burns a
  // shard attempt (the poison-search currency); a bare connection loss —
  // network fault, partition, heartbeat silence with the process alive —
  // re-queues for free and leaves the worker to reconnect under a fresh
  // epoch. Every row the old epoch may still produce is fenced from here on.
  auto fence_connection = [&](Connection& c, bool from_heartbeat) {
    if (c.dead) return;
    c.dead = true;
    c.transport->Close();
    for (const std::size_t slot : c.started) {
      if (!done_slot[slot]) tracker.TaskAbandoned();
    }
    c.started.clear();

    bool death = false;
    Child* child = find_child(c.pid);
    if (child != nullptr && child->exited) {
      death = true;  // Already reaped by the sweep; this EOF is its echo.
    } else if (child != nullptr) {
      int status = 0;
      struct rusage usage;
      std::memset(&usage, 0, sizeof(usage));
      if (!tcp) {
        // A socketpair fd dies with its process: wait for the exit (the
        // worker is at most a few instructions from _exit).
        while (wait4(child->pid, &status, 0, &usage) < 0 && errno == EINTR) {
        }
        reap_child(*child, status, usage, from_heartbeat);
        death = true;
      } else if (wait4(child->pid, &status, WNOHANG, &usage) == child->pid) {
        reap_child(*child, status, usage, from_heartbeat);
        death = true;
      }
    }

    if (c.quit_sent && !c.has_shard) return;  // Clean, commanded exit.

    if (!death && c.welcomed) {
      ++stats_.disconnects;
      if (observed) {
        registry.GetCounter("tfb_transport_disconnects_total").Increment();
      }
      obs::DefaultLogger().Warn(
          "shard: worker connection lost, lease fenced",
          {{"epoch", std::to_string(c.epoch)},
           {"via", from_heartbeat ? "heartbeat-timeout" : "socket"},
           {"transport", c.transport->Describe()}});
    }

    if (!c.has_shard) return;
    Shard shard = std::move(c.shard);
    c.has_shard = false;
    shard.slots.erase(
        std::remove_if(shard.slots.begin(), shard.slots.end(),
                       [&](std::size_t slot) { return done_slot[slot]; }),
        shard.slots.end());
    if (shard.slots.empty()) {
      ++shards_completed;  // It died on the finish line.
    } else if (hard_killed) {
      // Shutting down hard: abandon the remainder.
    } else if (!death) {
      // Connection drop without a death: re-dispatch for free. Network
      // chaos must never binary-search healthy tasks into quarantine.
      if (shard.attempts > 0) --shard.attempts;
      queue.push_front(std::move(shard));
      ++stats_.redispatches;
      if (observed) {
        registry.GetCounter("tfb_shard_redispatch_total").Increment();
      }
    } else if (shard.attempts >= shard_options_.max_shard_attempts) {
      if (shard.slots.size() > 1) {
        // Binary-search the poison: two half-shards, fresh attempts.
        const std::size_t mid = shard.slots.size() / 2;
        Shard left;
        left.id = next_shard_id++;
        left.slots.assign(shard.slots.begin(),
                          shard.slots.begin() +
                              static_cast<std::ptrdiff_t>(mid));
        Shard right;
        right.id = next_shard_id++;
        right.slots.assign(shard.slots.begin() +
                               static_cast<std::ptrdiff_t>(mid),
                           shard.slots.end());
        queue.push_front(std::move(right));
        queue.push_front(std::move(left));
        ++stats_.shard_splits;
        shards_total += 2;
        ++shards_completed;  // The parent shard is gone.
        if (observed) {
          registry.GetCounter("tfb_shard_splits_total").Increment();
        }
      } else {
        quarantine(shard.slots[0], shard.attempts);
        ++shards_completed;
      }
    } else {
      queue.push_front(std::move(shard));
      ++stats_.redispatches;
      if (observed) {
        registry.GetCounter("tfb_shard_redispatch_total").Increment();
      }
    }
  };

  auto protocol_violation = [&](Connection& c, const char* what) {
    ++stats_.corrupt_frames;
    if (observed) {
      registry.GetCounter("tfb_transport_corrupt_frames_total").Increment();
    }
    obs::DefaultLogger().Warn(
        "shard: protocol violation, killing connection",
        {{"what", what}, {"epoch", std::to_string(c.epoch)}});
    fence_connection(c, /*from_heartbeat=*/false);
  };

  // Clock-offset probes: a few PING echoes per connection, the first sent
  // right after WELCOME and the rest as each PONG lands (back-to-back sends
  // would share one queueing stall and defeat the min-RTT filter). The
  // token carries the send timestamp, so the coordinator keeps no pending
  // map: everything needed comes back in the echo.
  constexpr std::size_t kPingProbes = 3;
  auto send_ping = [&](Connection& c) {
    if (!observed || c.dead || c.quit_sent) return;
    Frame ping;
    ping.type = FrameType::kPing;
    char token[64];
    std::snprintf(token, sizeof(token), "%zu %.3f", c.pings_sent,
                  obs::TraceNowMicros());
    ping.payload = token;
    ++c.pings_sent;
    if (!c.transport->Send(ping)) {
      fence_connection(c, /*from_heartbeat=*/false);
    }
  };

  // Applies one worker telemetry blob (piggybacked on HEARTBEAT/DONE).
  // Dedup is per (pid, seq): a DONE resent through a healed partition
  // carries the batch it was built with, and must not count twice.
  auto merge_telemetry = [&](Connection& c, std::string_view blob) {
    if (!observed) return;  // Never requested: stray blob, ignore.
    WorkerTelemetry t;
    if (!DeserializeWorkerTelemetry(blob, &t)) {
      protocol_violation(c, "bad telemetry blob");
      return;
    }
    WorkerRecord& rec = fleet[t.pid];
    if (t.seq <= rec.last_seq) return;  // Replayed batch; already applied.
    rec.last_seq = t.seq;
    rec.tasks_completed = t.tasks_completed;
    rec.cpu_seconds = t.cpu_seconds;
    rec.peak_rss_mb = t.peak_rss_mb;
    const std::string worker = std::to_string(t.pid);
    MergeWorkerTelemetry(t, worker, c.clock_offset_us, &registry,
                         &obs::DefaultTracer());
    registry.GetGauge(SpliceWorkerLabel("tfb_fleet_worker_tasks", worker))
        .Set(static_cast<double>(t.tasks_completed));
    registry
        .GetGauge(SpliceWorkerLabel("tfb_fleet_worker_cpu_seconds", worker))
        .Set(t.cpu_seconds);
    registry
        .GetGauge(SpliceWorkerLabel("tfb_fleet_worker_peak_rss_mb", worker))
        .Set(t.peak_rss_mb);
    registry
        .GetGauge(
            SpliceWorkerLabel("tfb_fleet_worker_clock_offset_us", worker))
        .Set(c.clock_offset_us);
  };

  auto welcome = [&](Connection& c, std::uint64_t prev_epoch,
                     std::size_t claimed_pid) {
    if (c.pid < 0) c.pid = static_cast<pid_t>(claimed_pid);
    c.epoch = next_epoch++;
    c.welcomed = true;
    c.segment_path = segment_base + ".seg" + std::to_string(c.epoch);
    segment_paths.push_back(c.segment_path);
    ++stats_.connections;
    if (observed) {
      registry.GetCounter("tfb_transport_connections_total").Increment();
    }
    if (prev_epoch > 0) {
      ++stats_.reconnects;
      if (observed) {
        registry.GetCounter("tfb_transport_reconnects_total").Increment();
      }
      obs::DefaultLogger().Info(
          "shard: worker reconnected",
          {{"prev_epoch", std::to_string(prev_epoch)},
           {"epoch", std::to_string(c.epoch)}});
    }
    char header[64];
    std::snprintf(header, sizeof(header), "%llu %.6f\n",
                  static_cast<unsigned long long>(c.epoch),
                  shard_options_.heartbeat_seconds > 0.0
                      ? shard_options_.heartbeat_seconds
                      : 0.25);
    Frame frame;
    frame.type = FrameType::kWelcome;
    frame.payload = std::string(header) + options_blob;
    if (!c.transport->Send(frame)) {
      fence_connection(c, /*from_heartbeat=*/false);
      return;
    }
    if (observed) {
      // Post-WELCOME only: the worker's handshake rejects frames it is not
      // expecting, and TCP ordering guarantees WELCOME lands first.
      Frame ctx;
      ctx.type = FrameType::kTraceCtx;
      ctx.payload = SerializeTraceContext(TraceContext{run_trace_id, 0});
      if (!c.transport->Send(ctx)) {
        fence_connection(c, /*from_heartbeat=*/false);
        return;
      }
      send_ping(c);
    }
  };

  auto grant = [&](Connection& c) {
    if (queue.empty() || draining || c.quit_sent || !c.welcomed || c.dead) {
      return;
    }
    Shard shard = std::move(queue.front());
    queue.pop_front();
    if (tcp) {
      // TCP workers inherit nothing: ship every task of the shard first.
      for (const std::size_t slot : shard.slots) {
        Frame task_frame;
        task_frame.type = FrameType::kTask;
        task_frame.payload =
            std::to_string(slot) + "\n" + SerializeTask(tasks[slot]);
        if (!c.transport->Send(task_frame)) {
          // The connection is dying; its EOF will be handled shortly.
          queue.push_front(std::move(shard));
          return;
        }
      }
    }
    ++shard.attempts;
    Frame grant_frame;
    grant_frame.type = FrameType::kGrant;
    grant_frame.payload = std::to_string(shard.id);
    for (const std::size_t slot : shard.slots) {
      grant_frame.payload += ' ';
      grant_frame.payload += std::to_string(slot);
    }
    if (!c.transport->Send(grant_frame)) {
      --shard.attempts;
      queue.push_front(std::move(shard));
      return;
    }
    c.has_shard = true;
    c.shard = std::move(shard);
    c.grant_start_us = obs::TraceNowMicros();
    ++stats_.shards_dispatched;
    if (observed) {
      registry.GetCounter("tfb_shard_dispatch_total").Increment();
    }
  };

  auto process_frame = [&](Connection& c, const Frame& frame) {
    if (c.dead) return;
    if (!c.welcomed) {
      if (frame.type != FrameType::kHello) {
        protocol_violation(c, "frame before HELLO");
        return;
      }
      const auto fields = ParseSizeFields(frame.payload, 3, 3);
      if (!fields || (*fields)[0] != kWireVersion) {
        protocol_violation(c, "bad HELLO");
        return;
      }
      c.last_seen = Clock::now();
      welcome(c, (*fields)[1], (*fields)[2]);
      return;
    }
    c.last_seen = Clock::now();
    switch (frame.type) {
      case FrameType::kHeartbeat: {
        // "<epoch>" optionally followed by "\n<telemetry blob>".
        const std::size_t nl = frame.payload.find('\n');
        if (nl != std::string::npos) {
          merge_telemetry(c, std::string_view(frame.payload).substr(nl + 1));
        }
        break;
      }
      case FrameType::kPong: {
        // "<probe> <t_send> <t_remote>" — the first two are our own PING
        // token echoed back; t_recv is now, on our clock.
        const double t_recv = obs::TraceNowMicros();
        unsigned long long probe = 0;
        double t_send = 0.0;
        double t_remote = 0.0;
        if (std::sscanf(frame.payload.c_str(), "%llu %lf %lf", &probe,
                        &t_send, &t_remote) != 3) {
          protocol_violation(c, "bad PONG");
          return;
        }
        PingSample sample;
        sample.t_send_us = t_send;
        sample.t_recv_us = t_recv;
        sample.t_remote_us = t_remote;
        c.ping_samples.push_back(sample);
        c.clock_offset_us = EstimateClockOffset(c.ping_samples);
        if (c.pings_sent < kPingProbes) send_ping(c);
        break;
      }
      case FrameType::kStart: {
        const auto fields = ParseSizeFields(frame.payload, 2, 2);
        if (!fields) {
          protocol_violation(c, "bad START");
          return;
        }
        if ((*fields)[0] != c.epoch) break;  // Stale lease; ignore.
        const std::size_t slot = (*fields)[1];
        if (slot < total && !done_slot[slot]) {
          c.started.insert(slot);
          tracker.TaskStarted();
        }
        break;
      }
      case FrameType::kRow: {
        const std::size_t nl = frame.payload.find('\n');
        if (nl == std::string::npos) {
          protocol_violation(c, "ROW without body");
          return;
        }
        const std::string header = frame.payload.substr(0, nl);
        const std::size_t sp = header.find_last_of(' ');
        if (sp == std::string::npos) {
          protocol_violation(c, "bad ROW header");
          return;
        }
        const auto ints = ParseSizeFields(header.substr(0, sp), 4, 4);
        const auto seconds = ParseStrictDouble(header.substr(sp + 1));
        if (!ints || !seconds || (*ints)[2] > 1 || (*ints)[3] > 1) {
          protocol_violation(c, "bad ROW header");
          return;
        }
        const std::uint64_t row_epoch = (*ints)[0];
        const std::size_t slot = (*ints)[1];
        if (row_epoch != c.epoch) {
          // The lease fence: a row computed under a superseded epoch —
          // typically replayed after a reconnect, when its shard was
          // already re-dispatched — must not override first-completed-wins.
          ++stats_.fenced_completions;
          if (observed) {
            registry.GetCounter("tfb_transport_fenced_completions_total")
                .Increment();
          }
          obs::DefaultLogger().Info(
              "shard: fenced stale completion",
              {{"row_epoch", std::to_string(row_epoch)},
               {"epoch", std::to_string(c.epoch)},
               {"slot", std::to_string(slot)}});
          break;
        }
        if (slot >= total) {
          protocol_violation(c, "ROW slot out of range");
          return;
        }
        ResultRow row;
        if (!ParseJournalLine(frame.payload.substr(nl + 1), &row)) {
          protocol_violation(c, "unparsable ROW journal line");
          return;
        }
        // Durability before acknowledgement: the row lands in this
        // connection's segment before the task is marked done, so a
        // coordinator crash after this point still resumes correctly.
        if (!AppendJournal(c.segment_path, row, journal_options)) {
          obs::DefaultLogger().Error(
              "shard: segment append failed; fencing connection",
              {{"segment", c.segment_path}});
          fence_connection(c, /*from_heartbeat=*/false);
          return;
        }
        c.started.erase(slot);
        if (!done_slot[slot]) {
          done_slot[slot] = true;
          ++resolved;
          ++executed;
          tracker.TaskFinished(tasks[slot].method, (*ints)[2] != 0,
                               (*ints)[3] != 0, *seconds);
          if (observed) {
            registry.GetCounter("tfb_shard_tasks_completed_total")
                .Increment();
          }
          if (shard_options_.fault_drain_after_tasks > 0 &&
              executed >= shard_options_.fault_drain_after_tasks &&
              !draining) {
            draining = true;  // Chaos hook: behave as one SIGTERM.
            stats_.interrupted = true;
          }
        }
        break;
      }
      case FrameType::kDone: {
        // "<epoch> <shard>" optionally followed by "\n<telemetry blob>".
        const std::size_t nl = frame.payload.find('\n');
        const std::string_view header =
            std::string_view(frame.payload)
                .substr(0, nl == std::string::npos ? frame.payload.size()
                                                   : nl);
        const auto fields = ParseSizeFields(header, 2, 2);
        if (!fields) {
          protocol_violation(c, "bad DONE");
          return;
        }
        if (nl != std::string::npos) {
          // Telemetry rides even on a fenced DONE — the batch describes the
          // worker process, not the lease — and the seq fence already
          // guards replays.
          merge_telemetry(c, std::string_view(frame.payload).substr(nl + 1));
          if (c.dead) return;  // The blob was garbage; connection fenced.
        }
        if ((*fields)[0] != c.epoch) break;  // Stale lease; ignore.
        if (c.has_shard && c.shard.id == (*fields)[1]) {
          // A DONE closes only the slots whose ROWs actually arrived. On a
          // healthy connection the stream is FIFO (every ROW precedes its
          // DONE), but a partial partition can swallow ROW frames and then
          // heal in time for the DONE to sail through — without this check
          // those slots would be marked nowhere and the run would wait on
          // them forever. Lost slots re-queue as a fresh shard, free of
          // attempt cost: the worker is healthy, the network ate the rows.
          std::vector<std::size_t> missing;
          for (const std::size_t slot : c.shard.slots) {
            if (!done_slot[slot]) missing.push_back(slot);
          }
          if (!missing.empty()) {
            obs::DefaultLogger().Warn(
                "shard: DONE with undelivered rows, re-queueing",
                {{"shard", std::to_string(c.shard.id)},
                 {"missing", std::to_string(missing.size())},
                 {"epoch", std::to_string(c.epoch)}});
            Shard refill;
            refill.id = next_shard_id++;
            refill.slots = std::move(missing);
            queue.push_front(std::move(refill));
            ++shards_total;
            ++stats_.redispatches;
            if (observed) {
              registry.GetCounter("tfb_shard_redispatch_total").Increment();
            }
          }
          if (obs::DefaultTracer().enabled() && c.grant_start_us > 0.0) {
            obs::DefaultTracer().RecordComplete(
                "shard", "pipeline", c.grant_start_us,
                obs::TraceNowMicros() - c.grant_start_us,
                obs::ArgsJson(
                    {{"shard", std::to_string(c.shard.id)},
                     {"worker", std::to_string(c.pid)},
                     {"epoch", std::to_string(c.epoch)},
                     {"trace_id", std::to_string(run_trace_id)}}));
          }
          c.has_shard = false;
          ++shards_completed;
        }
        break;
      }
      case FrameType::kHello:
        protocol_violation(c, "duplicate HELLO");
        return;
      default:
        break;  // Unknown frame types are ignored (forward compatibility).
    }
  };

  // Drains whatever the connection has readable right now. Bounded rounds
  // so one floody connection cannot starve the rest of the event loop.
  auto pump_connection = [&](Connection& c) {
    std::vector<Frame> frames;
    for (int round = 0; round < 4 && !c.dead; ++round) {
      frames.clear();
      const Transport::RecvResult r = c.transport->Recv(&frames, 0);
      if (r == Transport::RecvResult::kFrames) {
        for (const Frame& frame : frames) {
          process_frame(c, frame);
          if (c.dead) return;
        }
        continue;
      }
      if (r == Transport::RecvResult::kIdle) return;
      if (r == Transport::RecvResult::kCorrupt) {
        protocol_violation(c, "corrupt frame");
      } else {  // kEof / kError.
        fence_connection(c, /*from_heartbeat=*/false);
      }
      return;
    }
  };

  auto accept_new_connections = [&] {
    if (!tcp || listener_ == nullptr || listener_->fd() < 0) return;
    while (std::unique_ptr<Transport> t = listener_->Accept()) {
      fcntl(t->fd(), F_SETFL, O_NONBLOCK);
      fcntl(t->fd(), F_SETFD, FD_CLOEXEC);
      auto conn = std::make_unique<Connection>();
      conn->transport = std::move(t);
      conn->last_seen = Clock::now();
      conns.push_back(std::move(conn));
    }
  };

  // --- Install drain-on-signal for the duration of the run ---
  EnsureShutdownPipe();
  DrainShutdownPipe();  // Clear requests left over from a previous run.
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = TfbShardShutdownHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  struct sigaction old_int, old_term;
  sigaction(SIGINT, &sa, &old_int);
  sigaction(SIGTERM, &sa, &old_term);

  // --- Initial fleet ---
  if (!pending.empty() && spawning) {
    const std::size_t initial_workers =
        std::min(num_workers, std::max<std::size_t>(1, queue.size()));
    for (std::size_t i = 0; i < initial_workers; ++i) spawn_worker();
  }
  publish_shard_stats();

  // --- Event loop ---
  while (resolved < pending.size()) {
    // Hand work to idle workers.
    for (std::size_t i = 0; i < conns.size(); ++i) {
      Connection& c = *conns[i];
      if (!c.dead && c.welcomed && !c.has_shard) grant(c);
    }
    if (draining) {
      bool in_flight = false;
      for (const auto& c : conns) {
        if (!c->dead && c->has_shard) in_flight = true;
      }
      if (!in_flight) break;  // Drained: queued work stays undone.
    }
    if (spawning && live_children == 0) {
      // Everybody is dead. Spawn a fresh worker if the budget allows;
      // otherwise the remaining tasks become INTERNAL rows below.
      if (draining || hard_killed || !spawn_worker()) break;
      continue;
    }

    std::vector<pollfd> pfds;
    pfds.push_back({g_shutdown_rfd, POLLIN, 0});
    if (tcp && listener_ != nullptr && listener_->fd() >= 0) {
      pfds.push_back({listener_->fd(), POLLIN, 0});
    }
    for (const auto& c : conns) {
      if (!c->dead && c->transport->fd() >= 0) {
        pfds.push_back({c->transport->fd(), POLLIN, 0});
      }
    }
    const int rc = poll(pfds.data(), pfds.size(), 100);
    if (rc < 0 && errno != EINTR) break;

    if (pfds[0].revents & POLLIN) {
      shutdown_requests += DrainShutdownPipe();
      if (shutdown_requests >= 1 && !draining) {
        draining = true;
        stats_.interrupted = true;
        obs::DefaultLogger().Warn(
            "shard: shutdown requested, draining in-flight shards", {});
      }
      if (shutdown_requests >= 2 && !hard_killed) {
        hard_killed = true;
        obs::DefaultLogger().Warn(
            "shard: second shutdown request, killing workers", {});
        for (const Child& child : children) {
          if (!child.exited) kill(child.pid, SIGKILL);
        }
        for (std::size_t i = 0; i < conns.size(); ++i) {
          Connection& c = *conns[i];
          // External workers have no pid to kill; cut their connections.
          if (!c.dead && find_child(c.pid) == nullptr) {
            fence_connection(c, /*from_heartbeat=*/false);
          }
        }
      }
    }

    accept_new_connections();
    for (std::size_t i = 0; i < conns.size(); ++i) {
      Connection& c = *conns[i];
      if (!c.dead) pump_connection(c);
    }
    if (tcp) sweep_children();

    // Heartbeat timeouts. A silent socketpair worker is wedged without
    // dying (e.g. SIGSTOP) — SIGKILL it and handle it exactly like a
    // crash. A silent TCP connection may be a live worker behind a
    // partition: fence the lease and let it reconnect.
    if (shard_options_.heartbeat_timeout_seconds > 0.0) {
      const auto now = Clock::now();
      for (std::size_t i = 0; i < conns.size(); ++i) {
        Connection& c = *conns[i];
        if (c.dead || c.quit_sent) continue;
        const double silent =
            std::chrono::duration<double>(now - c.last_seen).count();
        if (!c.welcomed) {
          if (silent > 10.0) {  // Never said HELLO: not a worker.
            c.dead = true;
            c.transport->Close();
          }
          continue;
        }
        if (silent > shard_options_.heartbeat_timeout_seconds) {
          if (!tcp && c.pid >= 0) kill(c.pid, SIGKILL);
          fence_connection(c, /*from_heartbeat=*/true);
        }
      }
    }
    publish_shard_stats();
  }

  // --- Shutdown: command every survivor out, then reap it ---
  // A worker whose shard fully completed but whose trailing DONE frame
  // was not yet read when the loop exited is idle, not mid-shard.
  for (const auto& c : conns) {
    if (!c->dead && c->has_shard &&
        std::all_of(c->shard.slots.begin(), c->shard.slots.end(),
                    [&](std::size_t slot) { return done_slot[slot]; })) {
      c->has_shard = false;
      ++shards_completed;
    }
  }
  // Stop accepting; a worker mid-reconnect then fails fast (ECONNREFUSED)
  // and exits on its own connect budget instead of lingering.
  if (listener_ != nullptr) {
    listener_->Close();
    listener_.reset();
  }
  for (Child& child : children) child.quit_expected = true;
  for (const auto& c : conns) {
    if (!c->dead) {
      c->quit_sent = true;
      Frame quit;
      quit.type = FrameType::kQuit;
      c->transport->Send(quit);
    }
  }
  // Child exit has no descriptor of its own, so a reap loop built on the
  // connection fds alone goes blind the moment the last EOF lands — on a
  // single CPU the child is typically still runnable-but-unscheduled at
  // that point, and a blind sleep here was a measurable constant tail on
  // every run. A pidfd makes exit pollable: the loop wakes the instant the
  // worker is gone. Where pidfd_open is unavailable the poll set may go
  // empty and a short sleep stands in.
  std::vector<int> child_pidfds(children.size(), -1);
#ifdef SYS_pidfd_open
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (!children[i].exited) {
      child_pidfds[i] =
          static_cast<int>(syscall(SYS_pidfd_open, children[i].pid, 0));
    }
  }
#endif
  const auto reap_deadline = Clock::now() + std::chrono::seconds(5);
  for (;;) {
    bool conn_alive = false;
    for (const auto& c : conns) {
      if (!c->dead) conn_alive = true;
    }
    if ((live_children == 0 && !conn_alive) || Clock::now() >= reap_deadline) {
      break;
    }
    std::vector<pollfd> pfds;
    for (const auto& c : conns) {
      if (!c->dead && c->transport->fd() >= 0) {
        pfds.push_back({c->transport->fd(), POLLIN, 0});
      }
    }
    for (std::size_t i = 0; i < children.size(); ++i) {
      if (!children[i].exited && child_pidfds[i] >= 0) {
        pfds.push_back({child_pidfds[i], POLLIN, 0});
      }
    }
    if (!pfds.empty()) {
      const int rc = poll(pfds.data(), pfds.size(), 200);
      if (rc < 0 && errno != EINTR) break;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    // Late ROW/DONE frames still count: a worker may complete its shard
    // between the loop's exit and the QUIT reaching it.
    for (std::size_t i = 0; i < conns.size(); ++i) {
      Connection& c = *conns[i];
      if (!c.dead) pump_connection(c);
    }
    sweep_children();
  }
  for (const int pidfd : child_pidfds) {
    if (pidfd >= 0) close(pidfd);
  }
  for (Child& child : children) {
    if (child.exited) continue;
    kill(child.pid, SIGKILL);  // Refused to leave within the grace period.
    int status = 0;
    struct rusage usage;
    std::memset(&usage, 0, sizeof(usage));
    while (wait4(child.pid, &status, 0, &usage) < 0 && errno == EINTR) {
    }
    reap_child(child, status, usage, /*from_heartbeat=*/false);
  }
  for (const auto& c : conns) {
    if (!c->dead) {
      c->dead = true;
      c->transport->Close();
    }
  }
  sigaction(SIGINT, &old_int, nullptr);
  sigaction(SIGTERM, &old_term, nullptr);

  // --- Merge: segments -> rows -> journal, atomically ---
  std::vector<std::string> all_segments = segment_paths;
  all_segments.push_back(quarantine_segment);
  std::size_t torn = 0;
  const std::vector<ResultRow> segment_rows =
      LoadJournalSegments(all_segments, &torn);
  std::unordered_map<std::string, std::size_t> segment_by_key;
  for (std::size_t i = 0; i < segment_rows.size(); ++i) {
    segment_by_key.emplace(JournalKey(segment_rows[i].dataset,
                                      segment_rows[i].method,
                                      segment_rows[i].horizon),
                           i);
  }
  std::vector<bool> journaled = adopted;  // Slots the merged journal keeps.
  std::unordered_set<std::size_t> rejected(unmarshallable.begin(),
                                           unmarshallable.end());
  for (std::size_t slot = 0; slot < total; ++slot) {
    if (adopted[slot] || rejected.count(slot) != 0) continue;
    const auto it = segment_by_key.find(JournalKey(
        tasks[slot].dataset, tasks[slot].method, tasks[slot].horizon));
    if (it != segment_by_key.end()) {
      rows[slot] = segment_rows[it->second];
      journaled[slot] = true;
    } else {
      // Never completed by any worker: an interrupted or starved task.
      // Deliberately NOT journaled, so --resume runs it.
      ResultRow& row = rows[slot];
      row.dataset = tasks[slot].dataset;
      row.method = tasks[slot].method;
      row.horizon = tasks[slot].horizon;
      row.ok = false;
      row.error =
          (stats_.interrupted
               ? base::Status::Aborted("run interrupted before task completed")
               : base::Status::Internal(
                     "task not completed by any worker (spawn budget "
                     "exhausted)"))
              .ToString();
    }
  }
  if (!journal_path.empty()) {
    // Canonical journal order: every finished grid row in task order —
    // byte-identical to a fresh single-process run's journal — followed by
    // prior rows whose keys are outside this grid (kept verbatim). Rows a
    // non-resume run re-executed supersede their journaled predecessors.
    std::unordered_set<std::string> grid_keys;
    grid_keys.reserve(total);
    for (const BenchmarkTask& task : tasks) {
      grid_keys.insert(JournalKey(task.dataset, task.method, task.horizon));
    }
    std::vector<ResultRow> final_rows;
    final_rows.reserve(prior_rows.size() + total);
    for (std::size_t slot = 0; slot < total; ++slot) {
      if (journaled[slot]) final_rows.push_back(rows[slot]);
    }
    for (const ResultRow& row : prior_rows) {
      if (grid_keys.count(JournalKey(row.dataset, row.method,
                                     row.horizon)) == 0) {
        final_rows.push_back(row);
      }
    }
    if (!RewriteJournal(journal_path, final_rows,
                        runner_options_.journal_fsync)) {
      obs::DefaultLogger().Error("shard: journal merge failed; segments kept",
                                 {{"journal", journal_path}});
      publish_shard_stats();
      tracker.EndRun();
      return rows;  // Segments stay on disk for the next resume to scavenge.
    }
  }
  for (const std::string& p : all_segments) unlink(p.c_str());
  if (!temp_dir.empty()) rmdir(temp_dir.c_str());

  publish_shard_stats();
  tracker.EndRun();
  if (runner_options_.verbose || stats_.worker_deaths > 0 ||
      stats_.disconnects > 0 || stats_.fenced_completions > 0) {
    obs::DefaultLogger().Info(
        "shard run finished",
        {{"transport", transport_name},
         {"workers", std::to_string(num_workers)},
         {"spawned", std::to_string(stats_.workers_spawned)},
         {"deaths", std::to_string(stats_.worker_deaths)},
         {"redispatches", std::to_string(stats_.redispatches)},
         {"splits", std::to_string(stats_.shard_splits)},
         {"quarantined", std::to_string(stats_.quarantined)},
         {"reconnects", std::to_string(stats_.reconnects)},
         {"disconnects", std::to_string(stats_.disconnects)},
         {"fenced", std::to_string(stats_.fenced_completions)},
         {"corrupt_frames", std::to_string(stats_.corrupt_frames)},
         {"torn_lines", std::to_string(torn)},
         {"worker_cpu_s",
          [&] {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.2f", worker_cpu_seconds);
            return std::string(buf);
          }()}});
  }
  return rows;
}

}  // namespace tfb::pipeline
