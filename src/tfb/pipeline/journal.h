#ifndef TFB_PIPELINE_JOURNAL_H_
#define TFB_PIPELINE_JOURNAL_H_

#include <string>
#include <vector>

#include "tfb/pipeline/runner.h"

namespace tfb::pipeline {

/// JSONL run journal: one self-contained JSON object per completed result
/// row, appended (and flushed) as each task finishes. An interrupted
/// multi-hour grid can then be resumed — `BenchmarkRunner` with
/// `resume=true` skips every `(dataset, method, horizon)` cell already
/// present in the journal, whether it succeeded or failed (both are
/// *finished* outcomes; delete the journal to force a full re-run).
///
/// Line format (metric keys are eval::MetricName spellings):
///   {"dataset":"ILI","method":"VAR","horizon":12,"ok":true,"error":"",
///    "selected_config":"VAR","used_fallback":false,"note":"",
///    "num_windows":4,"fit_seconds":0.01,"inference_ms_per_window":0.5,
///    "cpu_user_seconds":0.01,"cpu_sys_seconds":0.0,"peak_rss_mb":42.5,
///    "metrics":{"mae":0.51,"mse":0.42}}
/// The cpu_*/peak_rss_mb resource fields (tfb/obs) round-trip so a resumed
/// run keeps the resource accounting of the rows it adopted. Failed rows
/// from sandboxed runs may additionally carry "stderr_tail" (the child's
/// captured stderr last words); it is omitted when empty.

/// Serializes one row as a single JSON line (no trailing newline).
std::string JournalLine(const ResultRow& row);

/// Durability/concurrency knobs for journal appends.
struct JournalOptions {
  /// fsync() the journal after every appended row: a row then survives not
  /// just a process crash but a machine crash, at ~1 write's latency cost.
  bool fsync_each_row = false;
};

/// Appends `row` to the journal at `path`, creating the file if needed.
/// Crash-safe under concurrent writers: the full line (with its trailing
/// newline) goes out as a single write() on an O_APPEND descriptor held
/// under an exclusive flock(), so lines from parallel workers — or from
/// separate tfb_run processes sharing one journal — never interleave. A
/// worker killed mid-append can leave at most one torn final line, which
/// LoadJournal skips. Returns false on I/O failure.
bool AppendJournal(const std::string& path, const ResultRow& row,
                   const JournalOptions& options = {});

/// Parses one journal line back into a row; returns false on malformed
/// input (the resume path skips such lines rather than failing the run).
bool ParseJournalLine(const std::string& line, ResultRow* row);

/// Loads every well-formed row from the journal at `path`. A missing file
/// is an empty journal, not an error. When `skipped` is non-null it
/// receives the number of malformed lines.
std::vector<ResultRow> LoadJournal(const std::string& path,
                                   std::size_t* skipped = nullptr);

/// The resume identity of a task/row: "dataset\x1fmethod\x1fhorizon".
std::string JournalKey(const std::string& dataset, const std::string& method,
                       std::size_t horizon);

/// Dedups rows on JournalKey, first occurrence wins ("first completed
/// wins": a task re-executed after a worker death produces a duplicate row
/// in a later segment; the earliest complete row is authoritative). Order
/// of first occurrences is preserved.
std::vector<ResultRow> DedupJournalRows(std::vector<ResultRow> rows);

/// Loads and merges several journals (a main journal plus the per-worker
/// segments of a sharded run, in dispatch order): every well-formed line of
/// every existing file, deduped first-wins in `paths` order. Missing files
/// are empty journals; torn trailing lines (a worker killed mid-append) are
/// skipped by the line parser like any malformed line. When `skipped` is
/// non-null it receives the total number of skipped lines across files.
std::vector<ResultRow> LoadJournalSegments(const std::vector<std::string>& paths,
                                           std::size_t* skipped = nullptr);

/// Atomically replaces the journal at `path` with exactly `rows` (one line
/// each, in order): written to a temporary sibling, optionally fsync()ed,
/// then rename()d into place — a crash mid-merge leaves the old journal
/// (and any segments) intact for the next resume. Returns false on I/O
/// failure.
bool RewriteJournal(const std::string& path,
                    const std::vector<ResultRow>& rows, bool fsync_file);

}  // namespace tfb::pipeline

#endif  // TFB_PIPELINE_JOURNAL_H_
