#include "tfb/pipeline/transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "tfb/stats/rng.h"

namespace tfb::pipeline {

namespace {

constexpr char kMagic0 = 'T';
constexpr char kMagic1 = 'F';
constexpr std::size_t kHeaderSize = 2 + 1 + 4;  // magic + type + len.
constexpr std::size_t kTrailerSize = 4;         // crc.

// Wall-time budget for flushing one frame on a non-blocking socket whose
// buffer is full (the peer is alive but slow to read).
constexpr int kSendBudgetMs = 10000;

void PutU32Le(std::string* out, std::uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t GetU32Le(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  // Table generated once, on demand (poly 0xEDB88320, reflected IEEE).
  static const std::uint32_t* kTable = [] {
    static std::uint32_t table[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kHeaderSize + frame.payload.size() + kTrailerSize);
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(static_cast<char>(frame.type));
  PutU32Le(&out, static_cast<std::uint32_t>(frame.payload.size()));
  out.append(frame.payload);
  // CRC covers type + len + payload (everything after the magic).
  const std::uint32_t crc = Crc32(out.data() + 2, out.size() - 2);
  PutU32Le(&out, crc);
  return out;
}

FrameDecoder::Result FrameDecoder::Next(Frame* out, std::string* error) {
  if (buffer_.size() < kHeaderSize) return Result::kNeedMore;
  if (buffer_[0] != kMagic0 || buffer_[1] != kMagic1) {
    if (error != nullptr) *error = "bad frame magic";
    return Result::kCorrupt;
  }
  const std::uint32_t len = GetU32Le(buffer_.data() + 3);
  if (len > kMaxFramePayload) {
    if (error != nullptr) {
      *error = "frame length " + std::to_string(len) + " exceeds cap";
    }
    return Result::kCorrupt;
  }
  const std::size_t total = kHeaderSize + len + kTrailerSize;
  if (buffer_.size() < total) return Result::kNeedMore;
  const std::uint32_t want = GetU32Le(buffer_.data() + kHeaderSize + len);
  const std::uint32_t got = Crc32(buffer_.data() + 2, 1 + 4 + len);
  if (want != got) {
    if (error != nullptr) *error = "frame crc mismatch";
    return Result::kCorrupt;
  }
  out->type = static_cast<FrameType>(buffer_[2]);
  out->payload.assign(buffer_.data() + kHeaderSize, len);
  buffer_.erase(0, total);
  return Result::kFrame;
}

// ---------------------------------------------------------------------------
// FdTransport: frames over any connected SOCK_STREAM descriptor.

namespace {

class FdTransport final : public Transport {
 public:
  FdTransport(int fd, std::string describe)
      : fd_(fd), describe_(std::move(describe)) {}
  ~FdTransport() override { Close(); }

  int fd() const override { return fd_; }

  bool Send(const Frame& frame) override {
    if (fd_ < 0) return false;
    const std::string wire = EncodeFrame(frame);
    return SendRaw(wire.data(), wire.size());
  }

  RecvResult Recv(std::vector<Frame>* out, int timeout_ms) override {
    if (fd_ < 0) return RecvResult::kError;
    bool got_frame = false;
    for (;;) {
      // Drain frames already buffered before touching the socket.
      Frame frame;
      std::string error;
      FrameDecoder::Result r = decoder_.Next(&frame, &error);
      while (r == FrameDecoder::Result::kFrame) {
        out->push_back(std::move(frame));
        got_frame = true;
        r = decoder_.Next(&frame, &error);
      }
      if (r == FrameDecoder::Result::kCorrupt) return RecvResult::kCorrupt;
      if (got_frame) return RecvResult::kFrames;

      pollfd pfd{fd_, POLLIN, 0};
      const int ready = poll(&pfd, 1, timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return RecvResult::kError;
      }
      if (ready == 0) return RecvResult::kIdle;
      char chunk[8192];
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return RecvResult::kEof;
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          // Spurious wakeup on a non-blocking fd; try again within budget.
          if (timeout_ms == 0) return RecvResult::kIdle;
          continue;
        }
        return RecvResult::kError;
      }
      decoder_.Feed(chunk, static_cast<std::size_t>(n));
    }
  }

  void Close() override {
    if (fd_ >= 0) {
      // shutdown() reaches the peer even when a forked child still holds a
      // duplicate of this descriptor; plain close() would not.
      shutdown(fd_, SHUT_RDWR);
      close(fd_);
      fd_ = -1;
    }
  }

  std::string Describe() const override { return describe_; }

 private:
  bool SendRaw(const char* p, std::size_t left) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(kSendBudgetMs);
    while (left > 0) {
      const ssize_t n = send(fd_, p, left, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (std::chrono::steady_clock::now() >= deadline) return false;
          pollfd pfd{fd_, POLLOUT, 0};
          poll(&pfd, 1, 50);
          continue;
        }
        return false;
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    return true;
  }

  int fd_ = -1;
  std::string describe_;
  FrameDecoder decoder_;
};

}  // namespace

std::unique_ptr<Transport> MakeFdTransport(int fd, std::string describe) {
  return std::make_unique<FdTransport>(fd, std::move(describe));
}

// ---------------------------------------------------------------------------
// TCP.

std::unique_ptr<Transport> TcpConnect(const std::string& host,
                                      std::uint16_t port, std::string* error) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + strerror(errno);
    return nullptr;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad address: " + host;
    close(fd);
    return nullptr;
  }
  int rc;
  do {
    rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (error != nullptr) {
      *error = "connect " + host + ":" + std::to_string(port) + ": " +
               strerror(errno);
    }
    close(fd);
    return nullptr;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return MakeFdTransport(fd, "tcp:" + host + ":" + std::to_string(port));
}

TcpListener::~TcpListener() { Close(); }

std::unique_ptr<TcpListener> TcpListener::Listen(const std::string& host,
                                                 std::uint16_t port,
                                                 std::string* error) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + strerror(errno);
    return nullptr;
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad bind address: " + host;
    close(fd);
    return nullptr;
  }
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "bind " + host + ":" + std::to_string(port) + ": " +
               strerror(errno);
    }
    close(fd);
    return nullptr;
  }
  if (listen(fd, SOMAXCONN) != 0) {
    if (error != nullptr) *error = std::string("listen: ") + strerror(errno);
    close(fd);
    return nullptr;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  std::uint16_t actual = port;
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    actual = ntohs(bound.sin_port);
  }
  fcntl(fd, F_SETFD, FD_CLOEXEC);
  auto listener = std::unique_ptr<TcpListener>(new TcpListener());
  listener->fd_ = fd;
  listener->port_ = actual;
  return listener;
}

std::unique_ptr<Transport> TcpListener::Accept() {
  if (fd_ < 0) return nullptr;
  int client;
  do {
    client = accept(fd_, nullptr, nullptr);
  } while (client < 0 && errno == EINTR);
  if (client < 0) return nullptr;
  const int one = 1;
  setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return MakeFdTransport(client, "tcp:accepted:" + std::to_string(client));
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// Fault injection.

namespace {

class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(std::unique_ptr<Transport> inner,
                          const FaultPlan& plan, std::uint64_t connection_id)
      : inner_(std::move(inner)),
        plan_(plan),
        rng_(plan.seed * 0x9E3779B97F4A7C15ULL + connection_id + 1) {}

  int fd() const override { return inner_->fd(); }

  bool Send(const Frame& frame) override {
    const bool heartbeat = frame.type == FrameType::kHeartbeat;
    // The partition counter deliberately excludes heartbeats (sent from a
    // timer thread) so the trigger point is deterministic for a given
    // protocol flow regardless of thread scheduling.
    if (!heartbeat) ++data_frames_;
    if (plan_.partition_frames > 0 && data_frames_ > plan_.partition_after &&
        data_frames_ <= plan_.partition_after + plan_.partition_frames) {
      // Blackhole: pretend success. The peer's heartbeat timeout is the
      // only way this failure mode is ever discovered — exactly like a
      // real network partition.
      return true;
    }
    if (plan_.delay > 0.0 && Chance(plan_.delay)) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(plan_.delay_ms));
    }
    if (plan_.drop > 0.0 && Chance(plan_.drop)) {
      inner_->Close();
      return false;
    }
    std::string wire = EncodeFrame(frame);
    if (plan_.short_write > 0.0 && Chance(plan_.short_write) &&
        wire.size() > 1) {
      // Deliver a strict prefix, then drop the connection: the receiver
      // holds a torn frame it must discard cleanly.
      const std::size_t cut = 1 + NextBelow(wire.size() - 1);
      SendBytes(wire.substr(0, cut));
      inner_->Close();
      return false;
    }
    if (plan_.corrupt > 0.0 && Chance(plan_.corrupt)) {
      const std::size_t pos = NextBelow(wire.size());
      const unsigned bit = static_cast<unsigned>(NextBelow(8));
      wire[pos] = static_cast<char>(wire[pos] ^ (1u << bit));
      return SendBytes(wire);
    }
    return SendBytes(wire);
  }

  RecvResult Recv(std::vector<Frame>* out, int timeout_ms) override {
    return inner_->Recv(out, timeout_ms);
  }

  void Close() override { inner_->Close(); }

  std::string Describe() const override {
    return inner_->Describe() + "+chaos";
  }

 private:
  bool Chance(double p) { return rng_.Uniform() < p; }
  std::size_t NextBelow(std::size_t n) {
    return n == 0 ? 0 : rng_.UniformInt(n);
  }
  // Bypasses inner_->Send (the frame is already — possibly mutated — wire
  // bytes): re-encode-free raw write through a scratch frame is impossible,
  // so poke the bytes at the fd directly.
  bool SendBytes(const std::string& wire) {
    const int fd = inner_->fd();
    if (fd < 0) return false;
    const char* p = wire.data();
    std::size_t left = wire.size();
    while (left > 0) {
      const ssize_t n = send(fd, p, left, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          pollfd pfd{fd, POLLOUT, 0};
          poll(&pfd, 1, 50);
          continue;
        }
        return false;
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    return true;
  }

  std::unique_ptr<Transport> inner_;
  FaultPlan plan_;
  stats::Rng rng_;
  std::size_t data_frames_ = 0;
};

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

std::optional<FaultPlan> ParseFaultPlan(const std::string& spec,
                                        std::string* error) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    std::string item = spec.substr(start, comma - start);
    start = comma + 1;
    // Trim surrounding whitespace.
    while (!item.empty() && std::isspace(static_cast<unsigned char>(
                                item.front()))) {
      item.erase(item.begin());
    }
    while (!item.empty() &&
           std::isspace(static_cast<unsigned char>(item.back()))) {
      item.pop_back();
    }
    if (item.empty()) continue;
    std::string key = item;
    std::string value;
    if (const std::size_t eq = item.find('='); eq != std::string::npos) {
      key = item.substr(0, eq);
      value = item.substr(eq + 1);
    }
    auto rate = [&](double* field, double fallback) {
      if (value.empty()) {
        *field = fallback;
        return true;
      }
      double v = 0.0;
      if (!ParseDouble(value, &v) || v < 0.0 || v > 1.0) return false;
      *field = v;
      return true;
    };
    bool ok = true;
    if (key == "drop") {
      ok = rate(&plan.drop, 0.05);
    } else if (key == "corrupt") {
      ok = rate(&plan.corrupt, 0.05);
    } else if (key == "short") {
      ok = rate(&plan.short_write, 0.05);
    } else if (key == "delay") {
      ok = rate(&plan.delay, 0.25);
    } else if (key == "delay_ms") {
      ok = ParseDouble(value, &plan.delay_ms) && plan.delay_ms >= 0.0;
    } else if (key == "partition") {
      if (value.empty()) {
        plan.partition_after = 8;
        plan.partition_frames = 6;
      } else {
        const std::size_t colon = value.find(':');
        char* end = nullptr;
        const unsigned long long after =
            std::strtoull(value.c_str(), &end, 10);
        ok = colon != std::string::npos &&
             end == value.c_str() + static_cast<std::ptrdiff_t>(colon);
        if (ok) {
          const char* tail = value.c_str() + colon + 1;
          const unsigned long long frames = std::strtoull(tail, &end, 10);
          ok = *tail != '\0' && *end == '\0' && frames > 0;
          if (ok) {
            plan.partition_after = static_cast<std::size_t>(after);
            plan.partition_frames = static_cast<std::size_t>(frames);
          }
        }
      }
    } else if (key == "seed") {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
      ok = !value.empty() && *end == '\0';
      if (ok) plan.seed = v;
    } else {
      ok = false;
    }
    if (!ok) {
      if (error != nullptr) *error = "bad chaos-net item: " + item;
      return std::nullopt;
    }
  }
  return plan;
}

std::string FaultPlanToString(const FaultPlan& plan) {
  std::string out = "seed=" + std::to_string(plan.seed);
  char buf[64];
  auto add = [&](const char* key, double v) {
    if (v <= 0.0) return;
    std::snprintf(buf, sizeof(buf), ",%s=%g", key, v);
    out += buf;
  };
  add("drop", plan.drop);
  add("corrupt", plan.corrupt);
  add("short", plan.short_write);
  add("delay", plan.delay);
  if (plan.delay > 0.0) add("delay_ms", plan.delay_ms);
  if (plan.partition_frames > 0) {
    out += ",partition=" + std::to_string(plan.partition_after) + ":" +
           std::to_string(plan.partition_frames);
  }
  return out;
}

std::unique_ptr<Transport> WrapWithFaultInjection(
    std::unique_ptr<Transport> inner, const FaultPlan& plan,
    std::uint64_t connection_id) {
  if (!plan.any()) return inner;
  return std::make_unique<FaultInjectingTransport>(std::move(inner), plan,
                                                   connection_id);
}

}  // namespace tfb::pipeline
