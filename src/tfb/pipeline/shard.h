#ifndef TFB_PIPELINE_SHARD_H_
#define TFB_PIPELINE_SHARD_H_

#include <csignal>
#include <cstddef>
#include <string>
#include <vector>

#include "tfb/pipeline/runner.h"

/// \file
/// Sharded multi-process benchmark execution with a crash-tolerant
/// coordinator (`--workers=N`). The coordinator deterministically partitions
/// the task grid into shards of consecutive pending tasks, fork()s N worker
/// processes (each inheriting the in-memory grid — no task marshalling), and
/// hands shards out over a per-worker Unix socketpair as workers go idle —
/// a pull-based work queue, so a slow shard never stalls the rest of the
/// grid behind a static partition.
///
/// Fault model: a worker that dies mid-shard (crash, OOM-kill, fault
/// injection) is detected by socket EOF or by missed heartbeats; the
/// unfinished remainder of its shard is re-queued to a surviving worker.
/// A shard that repeatedly dies is split in half to binary-search the
/// poisonous task, which is finally quarantined with a CRASHED row while
/// every healthy task still completes. Dead workers are replaced until a
/// bounded spawn budget runs out.
///
/// Durability: each worker appends finished rows to its own journal segment
/// (`<journal>.seg<spawn>`), so rows survive the death of any process; the
/// coordinator merges the segments into the main journal at the end —
/// deduped on the task key, first-completed row wins, torn trailing lines
/// discarded — and a resumed run scavenges leftover segments first, so
/// `--resume` recovers from any coordinator/worker crash combination. The
/// merged journal is byte-identical to a single-process run's journal
/// (pipeline_determinism_test proves it, including a mid-run worker kill).
///
/// SIGINT/SIGTERM drain the run: in-flight shards finish, workers are told
/// to quit, segments are merged and the journal is flushed; a second signal
/// kills the children immediately (completed rows still merge). Liveness,
/// shard progress, re-dispatch counts and per-worker rusage are exported
/// through tfb/obs (`tfb_shard_*` metrics and the /status "shard" object).

namespace tfb::pipeline {

/// Knobs of the sharded executor. The fault_* members are test/chaos hooks
/// (used by pipeline_shard_test, bench_shard_scaling and the CI smoke job)
/// that inject deterministic worker failure without touching task content —
/// rows stay byte-identical to a clean run.
struct ShardOptions {
  /// Worker processes to run concurrently. 1 is a valid (and measurable)
  /// degenerate case: one child executes every shard.
  std::size_t num_workers = 2;
  /// Tasks per shard; 0 = auto (~pending/(4*workers), clamped to [1, 32]):
  /// small enough that work-stealing balances uneven task costs and a death
  /// re-runs little, large enough to amortize the dispatch round-trip.
  std::size_t shard_size = 0;
  /// Worker heartbeat period, seconds. A dedicated thread in each worker
  /// beats even while a task computes, so a long task is not a dead worker.
  double heartbeat_seconds = 0.25;
  /// Silence window after which a worker is declared dead and SIGKILLed
  /// (catches workers wedged without closing their socket, e.g. SIGSTOP).
  double heartbeat_timeout_seconds = 10.0;
  /// Dispatch attempts before a dying shard is split (size > 1) or its last
  /// task is quarantined with a CRASHED row (size == 1).
  std::size_t max_shard_attempts = 2;
  /// Total worker spawns allowed, replacements included; 0 = auto
  /// (4 * num_workers). When the budget is exhausted and no worker
  /// survives, leftover tasks get INTERNAL rows (not journaled, so a
  /// resume retries them).
  std::size_t max_total_spawns = 0;

  /// Fault hook: the worker with this spawn index kills itself with
  /// fault_kill_signal after completing fault_kill_after_tasks tasks
  /// (-1 = disabled). SIGKILL exercises the EOF death path; SIGSTOP the
  /// heartbeat-timeout path. Spawn indices count every spawn, so a
  /// replacement worker never re-triggers a lower index's fault.
  int fault_kill_worker = -1;
  std::size_t fault_kill_after_tasks = 1;
  int fault_kill_signal = SIGKILL;
  /// Fault hook: the coordinator drains (as if SIGTERM) after this many
  /// task completions; 0 = disabled. For deterministic drain/resume tests.
  std::size_t fault_drain_after_tasks = 0;
};

/// What happened during one sharded run (also mirrored to obs metrics and
/// the /status "shard" object).
struct ShardRunStats {
  std::size_t workers_spawned = 0;   ///< Including replacements.
  std::size_t worker_deaths = 0;     ///< EOF deaths + heartbeat kills.
  std::size_t heartbeat_kills = 0;   ///< Deaths declared by missed beats.
  std::size_t shards_dispatched = 0; ///< Grants, re-dispatches included.
  std::size_t redispatches = 0;      ///< Shards re-queued after a death.
  std::size_t shard_splits = 0;      ///< Poison-isolating splits.
  std::size_t quarantined = 0;       ///< Tasks given CRASHED rows.
  std::size_t scavenged_segments = 0;///< Leftover segments merged at resume.
  bool interrupted = false;          ///< Drained early (signal or hook).
  bool spawn_budget_exhausted = false;
};

/// Multi-process grid executor; the sharded counterpart of
/// BenchmarkRunner::Run with the same row/journal/resume semantics.
class ShardCoordinator {
 public:
  ShardCoordinator(const RunnerOptions& runner_options,
                   const ShardOptions& shard_options)
      : runner_options_(runner_options), shard_options_(shard_options) {}

  /// Runs all tasks across the worker fleet; rows come back in task order,
  /// exactly as from BenchmarkRunner::Run. Installs SIGINT/SIGTERM drain
  /// handlers for its duration (restoring the previous ones). Not
  /// reentrant: one sharded run per process at a time.
  std::vector<ResultRow> Run(const std::vector<BenchmarkTask>& tasks);

  /// Stats of the last Run().
  const ShardRunStats& stats() const { return stats_; }

 private:
  RunnerOptions runner_options_;
  ShardOptions shard_options_;
  ShardRunStats stats_;
};

/// Asks the active sharded run to shut down, exactly as one delivery of
/// SIGINT/SIGTERM would: the first request drains (in-flight shards finish,
/// journal merges), a second one kills workers immediately. Safe from any
/// thread; the test-visible face of the signal path.
void RequestShardShutdown();

}  // namespace tfb::pipeline

#endif  // TFB_PIPELINE_SHARD_H_
