#ifndef TFB_PIPELINE_SHARD_H_
#define TFB_PIPELINE_SHARD_H_

#include <csignal>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tfb/pipeline/runner.h"
#include "tfb/pipeline/transport.h"

/// \file
/// Sharded multi-process benchmark execution with a crash-tolerant
/// coordinator (`--workers=N`). The coordinator deterministically partitions
/// the task grid into shards of consecutive pending tasks and hands them
/// out over framed, CRC-checked connections (see transport.h) as workers go
/// idle — a pull-based work queue, so a slow shard never stalls the rest of
/// the grid behind a static partition. Two transports:
///
///  - socketpair (default): workers are fork()ed children inheriting the
///    in-memory grid over a per-worker `socketpair(AF_UNIX)` — no task
///    marshalling, so tasks with in-memory `custom_candidates` stay
///    runnable.
///  - tcp (`--transport=tcp`): the coordinator listens (`--listen`), tasks
///    are marshalled explicitly in TASK frames, and workers connect over
///    TCP — forked loopback children by default, or external `tfb_worker`
///    processes on any host (`spawn_workers=false`).
///
/// Lease epochs: every accepted connection is welcomed with a fresh,
/// monotonically increasing epoch. Results (ROW frames) are accepted only
/// when they carry the connection's current epoch; a worker that vanished,
/// had its shard re-dispatched, and later reconnects replays its stale rows
/// under the old epoch and every one is *fenced* (counted, rejected) — the
/// first-completed-wins dedup and byte-identical `--resume` survive any
/// reconnect interleaving.
///
/// Fault model: a worker process that dies mid-shard is detected by EOF or
/// missed heartbeats; the unfinished remainder of its shard is re-queued.
/// A shard that repeatedly kills workers is split in half to binary-search
/// the poisonous task, which is finally quarantined with a CRASHED row.
/// A TCP connection that merely drops (network fault, partition) is fenced
/// and its shard re-queued *without* burning a shard attempt — network
/// chaos must not quarantine healthy tasks — and the worker reconnects with
/// capped exponential backoff.
///
/// Durability: workers hold no journal; every finished row travels back in
/// its ROW frame and the coordinator appends it to a per-connection segment
/// (`<journal>.seg<epoch>`) *before* marking the task done. Segments merge
/// into the main journal at the end (first-completed-wins dedup, atomic
/// rewrite) and a resumed run scavenges leftover segments first, so
/// `--resume` recovers from any coordinator/worker crash combination
/// byte-identically (pipeline_determinism_test proves it for both
/// transports, including mid-run kills).
///
/// SIGINT/SIGTERM drain the run; a second signal kills workers immediately.
/// Liveness, shard progress, transport health (reconnects, fenced
/// completions, corrupt frames) and per-worker rusage are exported through
/// tfb/obs (`tfb_shard_*` / `tfb_transport_*` metrics and the /status
/// "shard" object).

namespace tfb::pipeline {

/// Which transport carries coordinator<->worker frames.
enum class ShardTransport {
  kSocketpair,  ///< Forked children, inherited grid (single-host).
  kTcp,         ///< Listen + connect; tasks marshalled (multi-host-shaped).
};

/// Knobs of the sharded executor. The fault_* members are test/chaos hooks
/// (used by pipeline_shard_test, bench_shard_scaling and the CI smoke jobs)
/// that inject deterministic failure without touching task content — rows
/// stay byte-identical to a clean run.
struct ShardOptions {
  /// Worker processes to run concurrently. 1 is a valid (and measurable)
  /// degenerate case: one child executes every shard.
  std::size_t num_workers = 2;
  /// Tasks per shard; 0 = auto (~pending/(4*workers), clamped to [1, 32]):
  /// small enough that work-stealing balances uneven task costs and a death
  /// re-runs little, large enough to amortize the dispatch round-trip.
  std::size_t shard_size = 0;
  /// Worker heartbeat period, seconds. A dedicated thread in each worker
  /// beats even while a task computes, so a long task is not a dead worker.
  double heartbeat_seconds = 0.25;
  /// Silence window after which a connection is declared dead. A silent
  /// socketpair worker is SIGKILLed (it is wedged — e.g. SIGSTOP — and can
  /// never recover); a silent TCP connection is closed and fenced, because
  /// the worker may be alive behind a partition and allowed to reconnect.
  double heartbeat_timeout_seconds = 10.0;
  /// Dispatch attempts before a dying shard is split (size > 1) or its last
  /// task is quarantined with a CRASHED row (size == 1). Only worker
  /// *deaths* burn attempts; connection drops re-queue for free.
  std::size_t max_shard_attempts = 2;
  /// Total worker spawns allowed, replacements included; 0 = auto
  /// (4 * num_workers). When the budget is exhausted and no worker
  /// survives, leftover tasks get INTERNAL rows (not journaled, so a
  /// resume retries them).
  std::size_t max_total_spawns = 0;

  /// Transport selection (see ShardTransport).
  ShardTransport transport = ShardTransport::kSocketpair;
  /// TCP listen endpoint; port 0 binds an ephemeral port (recover it with
  /// ShardCoordinator::listen_port() after BindListener()).
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;
  /// Under transport=tcp: fork num_workers local processes that connect
  /// over loopback (the single-command path, and what replacement spawns
  /// use). false = external workers only (`tfb_worker --connect=...`);
  /// the coordinator then just listens and never forks.
  bool spawn_workers = true;

  /// Deterministic worker-side network-fault injection (`--chaos-net`),
  /// applied by forked workers to their send path. External tfb_worker
  /// processes carry their own --chaos-net flag instead.
  FaultPlan chaos;

  /// Fault hook: the worker with this spawn index kills itself with
  /// fault_kill_signal after completing fault_kill_after_tasks tasks
  /// (-1 = disabled). SIGKILL exercises the EOF death path; SIGSTOP the
  /// heartbeat-timeout path. Spawn indices count every spawn, so a
  /// replacement worker never re-triggers a lower index's fault.
  int fault_kill_worker = -1;
  std::size_t fault_kill_after_tasks = 1;
  int fault_kill_signal = SIGKILL;
  /// Fault hook: the coordinator drains (as if SIGTERM) after this many
  /// task completions; 0 = disabled. For deterministic drain/resume tests.
  std::size_t fault_drain_after_tasks = 0;
};

/// What happened during one sharded run (also mirrored to obs metrics and
/// the /status "shard" object).
struct ShardRunStats {
  std::size_t workers_spawned = 0;   ///< Including replacements.
  std::size_t worker_deaths = 0;     ///< Process deaths (EOF + heartbeat).
  std::size_t heartbeat_kills = 0;   ///< Deaths declared by missed beats.
  std::size_t shards_dispatched = 0; ///< Grants, re-dispatches included.
  std::size_t redispatches = 0;      ///< Shards re-queued (death or drop).
  std::size_t shard_splits = 0;      ///< Poison-isolating splits.
  std::size_t quarantined = 0;       ///< Tasks given CRASHED rows.
  std::size_t scavenged_segments = 0;///< Leftover segments merged at resume.
  bool interrupted = false;          ///< Drained early (signal or hook).
  bool spawn_budget_exhausted = false;

  // Transport health (all zero under a fault-free socketpair run).
  std::size_t connections = 0;        ///< Worker connections welcomed.
  std::size_t reconnects = 0;         ///< HELLOs carrying a previous epoch.
  std::size_t disconnects = 0;        ///< Connection losses without a death.
  std::size_t fenced_completions = 0; ///< Stale-epoch rows rejected.
  std::size_t corrupt_frames = 0;     ///< Framing/CRC/protocol kills.
};

/// Multi-process grid executor; the sharded counterpart of
/// BenchmarkRunner::Run with the same row/journal/resume semantics.
class ShardCoordinator {
 public:
  ShardCoordinator(const RunnerOptions& runner_options,
                   const ShardOptions& shard_options)
      : runner_options_(runner_options), shard_options_(shard_options) {}

  /// Under transport=tcp: binds the listen socket now, so the (possibly
  /// ephemeral) port is known before Run() blocks — tests and external
  /// workers need it. Run() calls this itself when not already bound.
  /// Returns false (with *error set) on bind failure; no-op under
  /// socketpair.
  bool BindListener(std::string* error = nullptr);

  /// The bound TCP listen port (after BindListener), else 0.
  std::uint16_t listen_port() const;

  /// Runs all tasks across the worker fleet; rows come back in task order,
  /// exactly as from BenchmarkRunner::Run. Installs SIGINT/SIGTERM drain
  /// handlers for its duration (restoring the previous ones). Not
  /// reentrant: one sharded run per process at a time.
  std::vector<ResultRow> Run(const std::vector<BenchmarkTask>& tasks);

  /// Stats of the last Run().
  const ShardRunStats& stats() const { return stats_; }

 private:
  RunnerOptions runner_options_;
  ShardOptions shard_options_;
  ShardRunStats stats_;
  std::unique_ptr<TcpListener> listener_;
};

/// Asks the active sharded run to shut down, exactly as one delivery of
/// SIGINT/SIGTERM would: the first request drains (in-flight shards finish,
/// journal merges), a second one kills workers immediately. Safe from any
/// thread; the test-visible face of the signal path.
void RequestShardShutdown();

}  // namespace tfb::pipeline

#endif  // TFB_PIPELINE_SHARD_H_
