#include "tfb/pipeline/journal.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <sstream>
#include <unordered_set>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "tfb/pipeline/config.h"

namespace tfb::pipeline {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// %.17g: doubles survive the write/parse round trip bit-exactly, so a
// resumed run reports identical metrics to the run that wrote the journal.
void AppendDouble(std::string* out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

/// Minimal cursor-based parser for the journal's flat JSON shape (strings,
/// numbers, booleans, and one level of nested object for "metrics").
struct Cursor {
  const std::string& text;
  std::size_t pos = 0;

  void SkipWs() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool ParseString(std::string* out) {
    SkipWs();
    if (pos >= text.size() || text[pos] != '"') return false;
    ++pos;
    out->clear();
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\' && pos < text.size()) {
        const char esc = text[pos++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return false;
            const long code = std::strtol(text.substr(pos, 4).c_str(),
                                          nullptr, 16);
            pos += 4;
            c = (code > 0 && code < 0x80) ? static_cast<char>(code) : '?';
            break;
          }
          default: c = esc;
        }
      }
      out->push_back(c);
    }
    if (pos >= text.size()) return false;
    ++pos;  // Closing quote.
    return true;
  }
  bool ParseNumber(double* out) {
    SkipWs();
    const char* begin = text.c_str() + pos;
    char* end = nullptr;
    *out = std::strtod(begin, &end);
    if (end == begin) return false;
    pos += static_cast<std::size_t>(end - begin);
    return true;
  }
  bool ParseBool(bool* out) {
    SkipWs();
    if (text.compare(pos, 4, "true") == 0) {
      pos += 4;
      *out = true;
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      pos += 5;
      *out = false;
      return true;
    }
    return false;
  }
};

bool ParseMetrics(Cursor* c, std::map<eval::Metric, double>* metrics) {
  if (!c->Eat('{')) return false;
  if (c->Eat('}')) return true;
  do {
    std::string name;
    double value = 0.0;
    if (!c->ParseString(&name) || !c->Eat(':') || !c->ParseNumber(&value)) {
      return false;
    }
    // Unknown metric names are tolerated (a newer journal read by older
    // code should not fail the whole resume).
    if (const auto metric = MetricFromName(name)) (*metrics)[*metric] = value;
  } while (c->Eat(','));
  return c->Eat('}');
}

}  // namespace

std::string JournalLine(const ResultRow& row) {
  std::string out = "{\"dataset\":";
  AppendEscaped(&out, row.dataset);
  out += ",\"method\":";
  AppendEscaped(&out, row.method);
  out += ",\"horizon\":" + std::to_string(row.horizon);
  out += ",\"ok\":";
  out += row.ok ? "true" : "false";
  out += ",\"error\":";
  AppendEscaped(&out, row.error);
  out += ",\"selected_config\":";
  AppendEscaped(&out, row.selected_config);
  out += ",\"used_fallback\":";
  out += row.used_fallback ? "true" : "false";
  out += ",\"note\":";
  AppendEscaped(&out, row.note);
  out += ",\"attempts\":" + std::to_string(row.attempts);
  out += ",\"num_windows\":" + std::to_string(row.num_windows);
  out += ",\"fit_seconds\":";
  AppendDouble(&out, row.fit_seconds);
  out += ",\"inference_ms_per_window\":";
  AppendDouble(&out, row.inference_ms_per_window);
  out += ",\"cpu_user_seconds\":";
  AppendDouble(&out, row.cpu_user_seconds);
  out += ",\"cpu_sys_seconds\":";
  AppendDouble(&out, row.cpu_sys_seconds);
  out += ",\"peak_rss_mb\":";
  AppendDouble(&out, row.peak_rss_mb);
  // Only present on rows that carry one (failed sandboxed tasks): the
  // common all-ok journal stays byte-for-byte what it was before this field
  // existed, and older readers tolerate the extra key anyway.
  if (!row.stderr_tail.empty()) {
    out += ",\"stderr_tail\":";
    AppendEscaped(&out, row.stderr_tail);
  }
  out += ",\"metrics\":{";
  bool first = true;
  for (const auto& [metric, value] : row.metrics) {
    if (!first) out += ",";
    first = false;
    AppendEscaped(&out, eval::MetricName(metric));
    out += ":";
    AppendDouble(&out, value);
  }
  out += "}}";
  return out;
}

bool AppendJournal(const std::string& path, const ResultRow& row,
                   const JournalOptions& options) {
  // O_RDWR (not O_WRONLY): the torn-fragment probe below needs to pread the
  // last byte; writes still go through O_APPEND positioning.
  const int fd = open(path.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC,
                      0644);
  if (fd < 0) return false;
  // The flock is belt-and-braces on top of O_APPEND atomicity: it also
  // covers the (filesystem-dependent) case of a single line larger than the
  // kernel's atomic-append granularity, and serializes the fsync.
  flock(fd, LOCK_EX);
  std::string line = JournalLine(row) + '\n';
  // A writer killed mid-append leaves the file without a trailing newline;
  // terminating that torn fragment first keeps this row on its own line
  // instead of merging with (and corrupting alongside) the fragment.
  struct stat st;
  if (fstat(fd, &st) == 0 && st.st_size > 0) {
    char last = '\n';
    if (pread(fd, &last, 1, st.st_size - 1) == 1 && last != '\n') {
      line.insert(line.begin(), '\n');
    }
  }
  bool ok = true;
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        write(fd, line.data() + written, line.size() - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      ok = false;
      break;
    }
  }
  if (ok && options.fsync_each_row && fsync(fd) != 0) ok = false;
  flock(fd, LOCK_UN);
  close(fd);
  return ok;
}

bool ParseJournalLine(const std::string& line, ResultRow* row) {
  Cursor c{line};
  if (!c.Eat('{')) return false;
  if (c.Eat('}')) return true;
  do {
    std::string key;
    if (!c.ParseString(&key) || !c.Eat(':')) return false;
    bool parsed;
    if (key == "dataset") {
      parsed = c.ParseString(&row->dataset);
    } else if (key == "method") {
      parsed = c.ParseString(&row->method);
    } else if (key == "error") {
      parsed = c.ParseString(&row->error);
    } else if (key == "selected_config") {
      parsed = c.ParseString(&row->selected_config);
    } else if (key == "note") {
      parsed = c.ParseString(&row->note);
    } else if (key == "stderr_tail") {
      parsed = c.ParseString(&row->stderr_tail);
    } else if (key == "ok") {
      parsed = c.ParseBool(&row->ok);
    } else if (key == "used_fallback") {
      parsed = c.ParseBool(&row->used_fallback);
    } else if (key == "metrics") {
      parsed = ParseMetrics(&c, &row->metrics);
    } else {
      double value = 0.0;
      parsed = c.ParseNumber(&value);
      if (parsed) {
        if (key == "horizon") {
          row->horizon = static_cast<std::size_t>(value);
        } else if (key == "attempts") {
          row->attempts = static_cast<std::size_t>(value);
        } else if (key == "num_windows") {
          row->num_windows = static_cast<std::size_t>(value);
        } else if (key == "fit_seconds") {
          row->fit_seconds = value;
        } else if (key == "inference_ms_per_window") {
          row->inference_ms_per_window = value;
        } else if (key == "cpu_user_seconds") {
          row->cpu_user_seconds = value;
        } else if (key == "cpu_sys_seconds") {
          row->cpu_sys_seconds = value;
        } else if (key == "peak_rss_mb") {
          row->peak_rss_mb = value;
        }  // Unknown numeric keys are tolerated for forward compatibility.
      }
    }
    if (!parsed) return false;
  } while (c.Eat(','));
  return c.Eat('}');
}

std::vector<ResultRow> LoadJournal(const std::string& path,
                                   std::size_t* skipped) {
  if (skipped != nullptr) *skipped = 0;
  std::vector<ResultRow> rows;
  std::ifstream is(path);
  if (!is) return rows;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ResultRow row;
    if (ParseJournalLine(line, &row)) {
      rows.push_back(std::move(row));
    } else if (skipped != nullptr) {
      ++*skipped;
    }
  }
  return rows;
}

std::string JournalKey(const std::string& dataset, const std::string& method,
                       std::size_t horizon) {
  return dataset + '\x1f' + method + '\x1f' + std::to_string(horizon);
}

std::vector<ResultRow> DedupJournalRows(std::vector<ResultRow> rows) {
  std::vector<ResultRow> out;
  out.reserve(rows.size());
  std::unordered_set<std::string> seen;
  for (ResultRow& row : rows) {
    if (seen.insert(JournalKey(row.dataset, row.method, row.horizon)).second) {
      out.push_back(std::move(row));
    }
  }
  return out;
}

std::vector<ResultRow> LoadJournalSegments(
    const std::vector<std::string>& paths, std::size_t* skipped) {
  if (skipped != nullptr) *skipped = 0;
  std::vector<ResultRow> rows;
  for (const std::string& path : paths) {
    std::size_t file_skipped = 0;
    std::vector<ResultRow> segment = LoadJournal(path, &file_skipped);
    if (skipped != nullptr) *skipped += file_skipped;
    rows.insert(rows.end(), std::make_move_iterator(segment.begin()),
                std::make_move_iterator(segment.end()));
  }
  return DedupJournalRows(std::move(rows));
}

bool RewriteJournal(const std::string& path,
                    const std::vector<ResultRow>& rows, bool fsync_file) {
  const std::string tmp = path + ".merge.tmp";
  const int fd = open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                      0644);
  if (fd < 0) return false;
  std::string buffer;
  for (const ResultRow& row : rows) {
    buffer += JournalLine(row);
    buffer += '\n';
  }
  bool ok = true;
  std::size_t written = 0;
  while (written < buffer.size()) {
    const ssize_t n =
        write(fd, buffer.data() + written, buffer.size() - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      ok = false;
      break;
    }
  }
  if (ok && fsync_file && fsync(fd) != 0) ok = false;
  close(fd);
  if (!ok) {
    unlink(tmp.c_str());
    return false;
  }
  if (rename(tmp.c_str(), path.c_str()) != 0) {
    unlink(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace tfb::pipeline
