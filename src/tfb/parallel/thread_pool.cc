#include "tfb/parallel/thread_pool.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "tfb/obs/metrics.h"

namespace tfb::parallel {

std::size_t HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

namespace {

std::atomic<std::size_t> g_reserved_coarse{0};

}  // namespace

CoarseReservation::CoarseReservation(std::size_t workers)
    : workers_(workers) {
  g_reserved_coarse.fetch_add(workers_, std::memory_order_relaxed);
}

CoarseReservation::~CoarseReservation() {
  g_reserved_coarse.fetch_sub(workers_, std::memory_order_relaxed);
}

std::size_t ReservedCoarseWorkers() {
  return g_reserved_coarse.load(std::memory_order_relaxed);
}

/// One ParallelFor in flight. Participants claim chunk indices of a fixed
/// partition with an atomic counter; which thread runs which chunk is
/// scheduling noise — the partition itself never moves, so results don't
/// depend on claiming order or worker count.
struct ThreadPool::Impl {
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t begin = 0;
    std::size_t total = 0;   // end - begin
    std::size_t chunks = 0;  // fixed partition size
    std::atomic<std::size_t> next{0};
  };

  std::mutex mutex;
  std::condition_variable work_cv;  // workers wait here for a job / exit
  std::condition_variable done_cv;  // the caller waits here for completion
  std::vector<std::thread> threads;
  Job* job = nullptr;  // at most one job in flight (ParallelFor blocks)
  std::uint64_t generation = 0;
  std::size_t active = 0;  // workers currently inside RunChunks
  bool shutdown = false;
  pid_t owner_pid = getpid();
  std::atomic<bool> busy{false};  // a ParallelFor currently owns the workers

  /// Chunk c of the fixed partition: front chunks absorb the remainder,
  /// so chunk sizes differ by at most one index.
  static void ChunkBounds(const Job& j, std::size_t c, std::size_t* lo,
                          std::size_t* hi) {
    const std::size_t base = j.total / j.chunks;
    const std::size_t rem = j.total % j.chunks;
    const std::size_t extra = std::min(c, rem);
    *lo = j.begin + c * base + extra;
    *hi = *lo + base + (c < rem ? 1 : 0);
  }

  static void RunChunks(Job& j) {
    while (true) {
      const std::size_t c = j.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= j.chunks) return;
      std::size_t lo;
      std::size_t hi;
      ChunkBounds(j, c, &lo, &hi);
      (*j.body)(lo, hi);
    }
  }

  void WorkerLoop() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex);
    while (true) {
      work_cv.wait(lock, [&] {
        return shutdown || (job != nullptr && generation != seen);
      });
      if (shutdown) return;
      seen = generation;
      Job& my_job = *job;
      ++active;
      lock.unlock();
      RunChunks(my_job);
      lock.lock();
      if (--active == 0) done_cv.notify_all();
    }
  }

  void Stop() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      shutdown = true;
    }
    work_cv.notify_all();
    for (std::thread& t : threads) t.join();
    threads.clear();
    shutdown = false;
  }
};

ThreadPool::ThreadPool(std::size_t workers) : impl_(new Impl()) {
  Resize(workers);
}

ThreadPool::~ThreadPool() {
  impl_->Stop();
  delete impl_;
}

void ThreadPool::Resize(std::size_t workers) {
  impl_->Stop();
  impl_->owner_pid = getpid();
  impl_->threads.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    impl_->threads.emplace_back([this] { impl_->WorkerLoop(); });
  }
}

std::size_t ThreadPool::workers() const { return impl_->threads.size(); }

ThreadPool& ThreadPool::Default() {
  // Leaked: workers must outlive static destruction order games.
  static ThreadPool* pool = new ThreadPool(HardwareThreads() - 1);
  return *pool;
}

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t total = end - begin;
  grain = std::max<std::size_t>(1, grain);

  // Concurrency budget: lanes available to this call, shrunk while the
  // pipeline runner has coarse workers reserved (see the header). A forked
  // sandbox child inherits no pool workers — run inline there.
  std::size_t budget = lanes();
  const std::size_t coarse = ReservedCoarseWorkers();
  if (coarse > 1) budget = std::max<std::size_t>(1, budget / coarse);
  const std::size_t max_chunks = std::min(budget, total / grain);
  if (max_chunks <= 1 || impl_->threads.empty() ||
      getpid() != impl_->owner_pid) {
    body(begin, end);
    return;
  }

  // Concurrent ParallelFor calls (e.g. two runner workers both inside a
  // kernel) don't queue up behind each other: whoever fails to claim the
  // workers runs its whole range inline. Either way each index runs the
  // same sequential code, so the choice only affects speed.
  bool expected = false;
  if (!impl_->busy.compare_exchange_strong(expected, true,
                                           std::memory_order_acquire)) {
    body(begin, end);
    return;
  }

  Impl::Job job;
  job.body = &body;
  job.begin = begin;
  job.total = total;
  job.chunks = max_chunks;

  if (obs::Enabled()) {
    obs::Registry& registry = obs::DefaultRegistry();
    registry.GetCounter("tfb_pool_parallel_for_total").Increment();
    registry.GetGauge("tfb_pool_queue_depth")
        .Set(static_cast<double>(max_chunks));
  }

  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = &job;
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();
  // The caller is a lane too, and its claiming loop only returns once
  // every chunk has been claimed — so afterwards each chunk is either done
  // (run here) or running inside a worker counted by `active`.
  Impl::RunChunks(job);
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->job = nullptr;  // Late-waking workers must not adopt the job.
    impl_->done_cv.wait(lock, [&] { return impl_->active == 0; });
  }
  impl_->busy.store(false, std::memory_order_release);
  if (obs::Enabled()) {
    obs::DefaultRegistry().GetGauge("tfb_pool_queue_depth").Set(0.0);
  }
}

}  // namespace tfb::parallel
