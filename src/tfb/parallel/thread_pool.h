#ifndef TFB_PARALLEL_THREAD_POOL_H_
#define TFB_PARALLEL_THREAD_POOL_H_

#include <cstddef>
#include <functional>

/// \file
/// Process-wide worker pool for data-parallel compute kernels (the
/// "Compute kernels" section of DESIGN.md).
///
/// The contract that matters here is *determinism*: ParallelFor splits an
/// index range into a fixed, contiguous partition and every index is
/// processed by exactly one worker running exactly the code a sequential
/// loop would run. No index is computed twice, nothing is reduced across
/// workers, so the bytes a kernel produces are identical for any thread
/// count — including zero workers (inline execution). This is what lets
/// the blocked GEMM parallelize while `pipeline_determinism_test` keeps
/// demanding byte-identical result rows across thread counts.
///
/// Oversubscription: the pipeline runner already parallelizes across tasks
/// (`RunnerOptions::num_threads`). When a grid is running with T workers,
/// every worker that also fanned out kernel work T-wide would put T*T
/// threads on the machine. The runner therefore holds a CoarseReservation
/// for its worker count while a grid runs; ParallelFor divides the machine
/// budget by the number of reserved coarse workers and falls back to
/// inline execution when nothing is left. Reservations only affect *speed*
/// — never results (see above).

namespace tfb::parallel {

/// Hardware concurrency, never 0.
std::size_t HardwareThreads();

/// The shared kernel worker pool. Workers are lazy: none are spawned until
/// the first Resize (or ParallelFor) asks for them.
class ThreadPool {
 public:
  /// The process-wide pool every compute kernel shares. Created on first
  /// use with HardwareThreads()-1 workers (so lanes = hardware threads).
  static ThreadPool& Default();

  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Sets the number of *worker threads* (the calling thread always
  /// participates, so lanes() == workers + 1). Blocks until the old crew
  /// has drained; safe to call between (not during) ParallelFor calls.
  void Resize(std::size_t workers);

  /// Current worker-thread count.
  std::size_t workers() const;
  /// Execution lanes available to a ParallelFor: workers() + the caller.
  std::size_t lanes() const { return workers() + 1; }

  /// Runs `body(chunk_begin, chunk_end)` over a fixed contiguous partition
  /// of [begin, end). At most `lanes()` chunks (bounded further by the
  /// coarse-reservation budget) and every chunk holds at least `grain`
  /// indices. The partition depends only on the chunk count, and each
  /// chunk is executed by exactly one thread, so results are byte-
  /// identical for any worker count. Blocks until every chunk finished.
  /// Not reentrant: a body must not call ParallelFor on the same pool.
  ///
  /// Fork safety: in a fork()ed child (the process sandbox) the pool's
  /// workers do not exist; ParallelFor detects the pid change and runs the
  /// whole range inline.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& body);

 private:
  struct Impl;
  Impl* impl_;
};

/// RAII reservation of the machine for N coarse-grain workers (the
/// pipeline runner's task threads). While any reservation is live, nested
/// kernel ParallelFor calls shrink to roughly lanes/total_reserved so the
/// two parallelism layers share one concurrency budget instead of
/// multiplying. Nestable and thread-safe; reservations from multiple
/// concurrent runners add up.
class CoarseReservation {
 public:
  explicit CoarseReservation(std::size_t workers);
  ~CoarseReservation();
  CoarseReservation(const CoarseReservation&) = delete;
  CoarseReservation& operator=(const CoarseReservation&) = delete;

 private:
  std::size_t workers_;
};

/// Total coarse-grain workers currently reserved (0 = no grid running).
std::size_t ReservedCoarseWorkers();

}  // namespace tfb::parallel

#endif  // TFB_PARALLEL_THREAD_POOL_H_
