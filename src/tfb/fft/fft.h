#ifndef TFB_FFT_FFT_H_
#define TFB_FFT_FFT_H_

#include <complex>
#include <span>
#include <vector>

namespace tfb::fft {

using Complex = std::complex<double>;

/// Smallest power of two >= n.
std::size_t NextPowerOfTwo(std::size_t n);

/// In-place iterative radix-2 Cooley–Tukey FFT. `x.size()` must be a power
/// of two. `inverse` applies the conjugate transform and 1/n scaling.
void Fft(std::vector<Complex>& x, bool inverse);

/// Forward FFT of a real signal, zero-padded to the next power of two.
/// Returns the full complex spectrum of the padded signal.
std::vector<Complex> RealFft(std::span<const double> x);

/// Full (biased) autocorrelation function computed via FFT:
/// acf[k] = sum_i (x_i - mean)(x_{i+k} - mean) / sum_i (x_i - mean)^2.
/// Returned vector has x.size() entries, acf[0] == 1 (or 0 for a constant
/// series).
std::vector<double> AutocorrelationFft(std::span<const double> x);

/// First lag k >= 1 at which the ACF crosses zero (catch22's firstzero_ac).
/// Returns x.size() when the ACF never crosses zero.
std::size_t FirstZeroAutocorrelation(std::span<const double> x);

/// FirstZeroAutocorrelation over a precomputed full ACF (as returned by
/// AutocorrelationFft, so acf.size() == x.size()). Lets callers that
/// already hold the ACF — the fused catch22 engine — skip the FFT.
/// Identical result to FirstZeroAutocorrelation on the original series.
std::size_t FirstZeroFromAcf(std::span<const double> acf);

/// Periodogram power spectrum (mean-removed, Hann-free raw periodogram):
/// entry k is |X_k|^2 / n for k in [0, n_padded/2].
std::vector<double> Periodogram(std::span<const double> x);

/// Estimates the dominant seasonal period from the periodogram peak,
/// restricted to periods in [min_period, max_period]. Returns 1 when the
/// spectrum is flat (no meaningful seasonality).
std::size_t EstimatePeriod(std::span<const double> x, std::size_t min_period = 2,
                           std::size_t max_period = 512);

/// EstimatePeriod over precomputed transforms of the same series:
/// `power` must be Periodogram(x), `acf` must be AutocorrelationFft(x),
/// and `n` is x.size(). Bit-identical to EstimatePeriod(x, ...); exists
/// so the fused catch22 engine can reuse its shared spectra instead of
/// recomputing both FFTs.
std::size_t EstimatePeriodFromSpectrum(std::size_t n,
                                       std::span<const double> power,
                                       std::span<const double> acf,
                                       std::size_t min_period = 2,
                                       std::size_t max_period = 512);

}  // namespace tfb::fft

#endif  // TFB_FFT_FFT_H_
