#include "tfb/fft/fft.h"

#include <algorithm>
#include <cmath>

#include "tfb/base/check.h"
#include "tfb/stats/descriptive.h"

namespace tfb::fft {

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void Fft(std::vector<Complex>& x, bool inverse) {
  const std::size_t n = x.size();
  TFB_CHECK((n & (n - 1)) == 0);
  if (n <= 1) return;
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = x[i + k];
        const Complex v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& c : x) c *= inv;
  }
}

std::vector<Complex> RealFft(std::span<const double> x) {
  const std::size_t n = NextPowerOfTwo(std::max<std::size_t>(x.size(), 1));
  std::vector<Complex> buf(n, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < x.size(); ++i) buf[i] = Complex(x[i], 0.0);
  Fft(buf, /*inverse=*/false);
  return buf;
}

std::vector<double> AutocorrelationFft(std::span<const double> x) {
  const std::size_t n = x.size();
  std::vector<double> acf(n, 0.0);
  if (n == 0) return acf;
  const double mean = stats::Mean(x);
  // Zero-pad to 2n to avoid circular wrap-around.
  const std::size_t padded = NextPowerOfTwo(2 * n);
  std::vector<Complex> buf(padded, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < n; ++i) buf[i] = Complex(x[i] - mean, 0.0);
  Fft(buf, /*inverse=*/false);
  for (auto& c : buf) c = Complex(std::norm(c), 0.0);
  Fft(buf, /*inverse=*/true);
  const double denom = buf[0].real();
  if (denom < 1e-15) return acf;
  for (std::size_t k = 0; k < n; ++k) acf[k] = buf[k].real() / denom;
  return acf;
}

std::size_t FirstZeroFromAcf(std::span<const double> acf) {
  for (std::size_t k = 1; k < acf.size(); ++k) {
    if (acf[k] <= 0.0) return k;
  }
  return acf.size();
}

std::size_t FirstZeroAutocorrelation(std::span<const double> x) {
  // AutocorrelationFft returns x.size() entries, so the no-crossing
  // fallback below is still x.size().
  return FirstZeroFromAcf(AutocorrelationFft(x));
}

std::vector<double> Periodogram(std::span<const double> x) {
  const std::size_t n = x.size();
  if (n == 0) return {};
  const double mean = stats::Mean(x);
  std::vector<double> centered(n);
  for (std::size_t i = 0; i < n; ++i) centered[i] = x[i] - mean;
  std::vector<Complex> spec = RealFft(centered);
  const std::size_t half = spec.size() / 2;
  std::vector<double> power(half + 1);
  for (std::size_t k = 0; k <= half; ++k) {
    power[k] = std::norm(spec[k]) / static_cast<double>(spec.size());
  }
  return power;
}

namespace {

/// Stage 1 of period estimation: the strongest admissible periodogram
/// bin, or 0 when no peak dominates the mean spectral power (so callers
/// can keep the ACF lazy — it is only needed for refinement).
std::size_t PeriodCandidateFromPower(std::size_t n,
                                     std::span<const double> power,
                                     std::size_t min_period,
                                     std::size_t max_period) {
  const std::size_t padded = NextPowerOfTwo(n);
  // Skip the DC bin; find the strongest bin whose implied period is in range.
  double best_power = 0.0;
  std::size_t best_period = 1;
  for (std::size_t k = 1; k < power.size(); ++k) {
    const double period = static_cast<double>(padded) / static_cast<double>(k);
    if (period < static_cast<double>(min_period) ||
        period > static_cast<double>(std::min(max_period, n / 2))) {
      continue;
    }
    if (power[k] > best_power) {
      best_power = power[k];
      best_period = static_cast<std::size_t>(std::lround(period));
    }
  }
  // Require the peak to dominate the mean spectral power; otherwise the
  // series is treated as non-seasonal.
  const double mean_power = stats::Mean(power);
  if (best_power < 4.0 * mean_power) return 0;
  return best_period;
}

/// Stage 2: refine against the ACF — pick the candidate (or a small
/// neighbourhood) with maximal autocorrelation, which resists spectral
/// leakage.
std::size_t RefinePeriodWithAcf(std::size_t best_period,
                                std::span<const double> acf) {
  std::size_t refined = best_period;
  double best_acf = -2.0;
  const std::size_t lo = best_period > 2 ? best_period - 2 : 2;
  const std::size_t hi = std::min(best_period + 2, acf.size() - 1);
  for (std::size_t p = lo; p <= hi; ++p) {
    if (acf[p] > best_acf) {
      best_acf = acf[p];
      refined = p;
    }
  }
  // White noise can still produce a dominant periodogram bin (the max of
  // ~n exponential variables); genuine seasonality must also show positive
  // autocorrelation at the candidate period.
  if (best_acf < 0.15) return 1;
  return refined;
}

}  // namespace

std::size_t EstimatePeriod(std::span<const double> x, std::size_t min_period,
                           std::size_t max_period) {
  if (x.size() < 2 * min_period) return 1;
  const std::vector<double> power = Periodogram(x);
  const std::size_t candidate =
      PeriodCandidateFromPower(x.size(), power, min_period, max_period);
  if (candidate == 0) return 1;
  const std::vector<double> acf = AutocorrelationFft(x);
  return RefinePeriodWithAcf(candidate, acf);
}

std::size_t EstimatePeriodFromSpectrum(std::size_t n,
                                       std::span<const double> power,
                                       std::span<const double> acf,
                                       std::size_t min_period,
                                       std::size_t max_period) {
  if (n < 2 * min_period) return 1;
  const std::size_t candidate =
      PeriodCandidateFromPower(n, power, min_period, max_period);
  if (candidate == 0) return 1;
  return RefinePeriodWithAcf(candidate, acf);
}

}  // namespace tfb::fft
