#ifndef TFB_NN_CONV_H_
#define TFB_NN_CONV_H_

#include "tfb/nn/module.h"

namespace tfb::nn {

/// Stack of dilated causal 1-D convolutions with ReLU and residual
/// connections (the TCN of Bai et al. 2018, also the backbone of the
/// MICN-family forecaster). Input is a batch of scalar windows (B x L);
/// output is the feature vector at the final time step (B x channels),
/// which a Dense head maps to the forecast.
class CausalConvStack : public Module {
 public:
  /// `dilations` gives one layer per entry (e.g. {1, 2, 4, 8}); the
  /// receptive field is 1 + (kernel-1) * sum(dilations).
  CausalConvStack(std::size_t seq_len, std::size_t channels,
                  std::vector<std::size_t> dilations, std::size_t kernel,
                  stats::Rng& rng);

  linalg::Matrix Forward(const linalg::Matrix& x, bool training) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;

 private:
  struct Layer {
    Parameter weight;  // (channels x in_channels*kernel)
    Parameter bias;    // (1 x channels)
    std::size_t in_channels;
    std::size_t dilation;
    bool residual;
  };

  std::size_t seq_len_;
  std::size_t channels_;
  std::size_t kernel_;
  std::vector<Layer> layers_;

  // Caches: per-layer input (B x in_channels*L) and pre-activation
  // (B x channels*L).
  std::vector<linalg::Matrix> inputs_cache_;
  std::vector<linalg::Matrix> preact_cache_;
};

}  // namespace tfb::nn

#endif  // TFB_NN_CONV_H_
