#include "tfb/nn/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "tfb/base/check.h"
#include "tfb/obs/metrics.h"
#include "tfb/obs/trace.h"

namespace tfb::nn {

Adam::Adam(std::vector<Parameter*> params, double lr, double beta1,
           double beta2, double weight_decay)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++step_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step_));
  const double one_minus_b1 = 1.0 - beta1_;
  const double one_minus_b2 = 1.0 - beta2_;
  // Single fused pass per parameter with the four streams (value, grad,
  // m, v) hoisted to raw pointers: one load/store pair per stream per
  // element instead of re-deriving data()[j] addresses through three
  // object indirections each.
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    double* value = p.value.data();
    const double* grad = p.grad.data();
    double* m = m_[i].data();
    double* v = v_[i].data();
    const std::size_t size = p.value.size();
    const bool decay = weight_decay_ > 0.0;
    for (std::size_t j = 0; j < size; ++j) {
      double g = grad[j];
      if (decay) g += weight_decay_ * value[j];
      m[j] = beta1_ * m[j] + one_minus_b1 * g;
      v[j] = beta2_ * v[j] + one_minus_b2 * g * g;
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      value[j] -= lr_ * mhat / (std::sqrt(vhat) + 1e-8);
    }
    p.ZeroGrad();
  }
}

void Adam::ZeroGrad() {
  for (Parameter* p : params_) p->ZeroGrad();
}

double MseLoss(const linalg::Matrix& pred, const linalg::Matrix& target) {
  TFB_CHECK(pred.rows() == target.rows() && pred.cols() == target.cols());
  double sum = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred.data()[i] - target.data()[i];
    sum += d * d;
  }
  return pred.size() > 0 ? sum / static_cast<double>(pred.size()) : 0.0;
}

namespace {

linalg::Matrix GatherRows(const linalg::Matrix& m,
                          const std::vector<std::size_t>& rows,
                          std::size_t begin, std::size_t end) {
  linalg::Matrix out(end - begin, m.cols());
  const std::size_t cols = m.cols();
  for (std::size_t i = begin; i < end; ++i) {
    const double* src = m.row(rows[i]);
    std::copy(src, src + cols, out.row(i - begin));
  }
  return out;
}

void ClipGradients(const std::vector<Parameter*>& params, double max_norm) {
  if (max_norm <= 0.0) return;
  double total = 0.0;
  for (const Parameter* p : params) {
    for (std::size_t i = 0; i < p->grad.size(); ++i) {
      total += p->grad.data()[i] * p->grad.data()[i];
    }
  }
  total = std::sqrt(total);
  if (total <= max_norm) return;
  const double scale = max_norm / (total + 1e-12);
  for (const Parameter* p : params) {
    for (std::size_t i = 0; i < p->grad.size(); ++i) {
      const_cast<Parameter*>(p)->grad.data()[i] *= scale;
    }
  }
}

}  // namespace

TrainResult TrainMse(Module& model, const linalg::Matrix& x,
                     const linalg::Matrix& y, const TrainOptions& options) {
  TFB_CHECK(x.rows() == y.rows());
  TFB_CHECK(x.rows() >= 2);
  TrainResult result;

  // Chronological validation tail (shuffling only the training portion
  // keeps the protocol honest for time series).
  const std::size_t n = x.rows();
  std::size_t val_n = static_cast<std::size_t>(options.val_fraction * n);
  val_n = std::min(val_n, n / 2);
  const std::size_t train_n = n - val_n;

  std::vector<Parameter*> params;
  model.CollectParameters(&params);
  Adam optimizer(params, options.learning_rate, 0.9, 0.999,
                 options.weight_decay);
  stats::Rng rng(options.seed);

  std::vector<std::size_t> train_rows(train_n);
  for (std::size_t i = 0; i < train_n; ++i) train_rows[i] = i;

  // Best-checkpoint storage.
  std::vector<linalg::Matrix> best_values;
  double best_val = std::numeric_limits<double>::infinity();
  int stale = 0;

  linalg::Matrix val_x;
  linalg::Matrix val_y;
  if (val_n > 0) {
    std::vector<std::size_t> val_rows(val_n);
    for (std::size_t i = 0; i < val_n; ++i) val_rows[i] = train_n + i;
    val_x = GatherRows(x, val_rows, 0, val_n);
    val_y = GatherRows(y, val_rows, 0, val_n);
  }

  const bool observed = obs::Enabled();
  for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
    const double epoch_start_us = observed ? obs::TraceNowMicros() : 0.0;
    // Shuffle training rows.
    for (std::size_t i = train_n; i > 1; --i) {
      std::swap(train_rows[i - 1], train_rows[rng.UniformInt(i)]);
    }
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin < train_n;
         begin += options.batch_size) {
      const std::size_t end = std::min(begin + options.batch_size, train_n);
      const linalg::Matrix bx = GatherRows(x, train_rows, begin, end);
      const linalg::Matrix by = GatherRows(y, train_rows, begin, end);
      const linalg::Matrix pred = model.Forward(bx, /*training=*/true);
      epoch_loss += MseLoss(pred, by);
      ++batches;
      // dL/dpred = 2 (pred - y) / numel.
      linalg::Matrix grad = pred;
      grad -= by;
      grad *= 2.0 / static_cast<double>(pred.size());
      model.Backward(grad);
      ClipGradients(params, options.grad_clip);
      optimizer.Step();
    }
    result.final_train_loss = batches > 0 ? epoch_loss / batches : 0.0;
    result.epochs_run = epoch + 1;

    double val_loss = result.final_train_loss;
    if (val_n > 0) {
      const linalg::Matrix val_pred = model.Forward(val_x, /*training=*/false);
      val_loss = MseLoss(val_pred, val_y);
    }
    if (observed) {
      // Per-epoch loss/duration distributions plus one trace span per
      // epoch: a stalling training run shows up as widening epoch spans in
      // the trace and a fat tail in tfb_nn_epoch_seconds.
      const double epoch_us = obs::TraceNowMicros() - epoch_start_us;
      obs::Registry& registry = obs::DefaultRegistry();
      registry
          .GetHistogram("tfb_nn_epoch_seconds",
                        obs::ExponentialBounds(1e-4, 2.0, 20))
          .Observe(epoch_us * 1e-6);
      registry
          .GetHistogram("tfb_nn_train_loss",
                        obs::ExponentialBounds(1e-6, 10.0, 12))
          .Observe(result.final_train_loss);
      registry.GetCounter("tfb_nn_epochs_total").Increment();
      obs::DefaultTracer().RecordComplete(
          "epoch", "nn", epoch_start_us, epoch_us,
          obs::ArgsJson({{"epoch", std::to_string(epoch)},
                         {"train_loss",
                          std::to_string(result.final_train_loss)},
                         {"val_loss", std::to_string(val_loss)}}));
    }
    if (val_loss < best_val - 1e-10) {
      best_val = val_loss;
      stale = 0;
      best_values.clear();
      best_values.reserve(params.size());
      for (const Parameter* p : params) best_values.push_back(p->value);
    } else if (++stale >= options.patience) {
      break;
    }
  }
  if (!best_values.empty()) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i]->value = best_values[i];
    }
  }
  result.best_val_loss = best_val;
  return result;
}

}  // namespace tfb::nn
