#ifndef TFB_NN_MODULE_H_
#define TFB_NN_MODULE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tfb/linalg/matrix.h"
#include "tfb/stats/rng.h"

namespace tfb::nn {

/// A trainable tensor with its accumulated gradient.
struct Parameter {
  linalg::Matrix value;
  linalg::Matrix grad;

  explicit Parameter(linalg::Matrix v)
      : value(std::move(v)), grad(value.rows(), value.cols()) {}

  /// Zeroes the gradient buffer.
  void ZeroGrad() { grad = linalg::Matrix(value.rows(), value.cols()); }
};

/// Base class for feed-forward building blocks. A Module maps a batch
/// (rows = samples or tokens) to an output batch and supports one
/// Forward/Backward round trip per step: Forward caches whatever Backward
/// needs; Backward consumes the cache, accumulates parameter gradients, and
/// returns the gradient w.r.t. the input.
class Module {
 public:
  virtual ~Module() = default;

  /// Computes outputs for `x`; `training` enables dropout-style behaviour.
  virtual linalg::Matrix Forward(const linalg::Matrix& x, bool training) = 0;

  /// Backpropagates `grad_output` (same shape as the last Forward output);
  /// returns the gradient w.r.t. the last Forward input.
  virtual linalg::Matrix Backward(const linalg::Matrix& grad_output) = 0;

  /// Appends this module's parameters to `out`.
  virtual void CollectParameters(std::vector<Parameter*>* out);
};

/// Fully connected layer: y = x W + b, with Glorot-uniform initialization.
class Dense : public Module {
 public:
  Dense(std::size_t in, std::size_t out, stats::Rng& rng);

  linalg::Matrix Forward(const linalg::Matrix& x, bool training) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  Parameter weight_;  // (in x out)
  Parameter bias_;    // (1 x out)
  linalg::Matrix input_cache_;
};

/// Element-wise ReLU.
class Relu : public Module {
 public:
  linalg::Matrix Forward(const linalg::Matrix& x, bool training) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_output) override;

 private:
  linalg::Matrix input_cache_;
};

/// Element-wise GELU (tanh approximation).
class Gelu : public Module {
 public:
  linalg::Matrix Forward(const linalg::Matrix& x, bool training) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_output) override;

 private:
  linalg::Matrix input_cache_;
};

/// Element-wise tanh.
class Tanh : public Module {
 public:
  linalg::Matrix Forward(const linalg::Matrix& x, bool training) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_output) override;

 private:
  linalg::Matrix output_cache_;
};

/// Inverted dropout; identity when not training.
class Dropout : public Module {
 public:
  Dropout(double rate, std::uint64_t seed) : rate_(rate), rng_(seed) {}

  linalg::Matrix Forward(const linalg::Matrix& x, bool training) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_output) override;

 private:
  double rate_;
  stats::Rng rng_;
  linalg::Matrix mask_;
  bool active_ = false;
};

/// Per-row layer normalization with learnable gain/offset.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::size_t dim);

  linalg::Matrix Forward(const linalg::Matrix& x, bool training) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;

 private:
  Parameter gamma_;  // (1 x dim)
  Parameter beta_;   // (1 x dim)
  linalg::Matrix normalized_cache_;
  std::vector<double> inv_std_cache_;
};

/// Runs child modules in order.
class Sequential : public Module {
 public:
  /// Appends a module; returns *this for chaining.
  Sequential& Add(std::unique_ptr<Module> module);

  linalg::Matrix Forward(const linalg::Matrix& x, bool training) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;

 private:
  std::vector<std::unique_ptr<Module>> modules_;
};

/// Total scalar parameter count of a parameter set.
std::size_t CountParameters(const std::vector<Parameter*>& params);

}  // namespace tfb::nn

#endif  // TFB_NN_MODULE_H_
