#include "tfb/nn/attention.h"

#include <cmath>
#include <vector>

#include "tfb/base/check.h"
#include "tfb/linalg/gemm.h"

namespace tfb::nn {

namespace {

linalg::Matrix ScaledInit(std::size_t in, std::size_t out, stats::Rng& rng) {
  linalg::Matrix w(in, out);
  const double limit = std::sqrt(6.0 / static_cast<double>(in + out));
  for (std::size_t i = 0; i < w.size(); ++i) {
    w.data()[i] = rng.Uniform(-limit, limit);
  }
  return w;
}

}  // namespace

SelfAttention::SelfAttention(std::size_t dim, std::size_t tokens,
                             stats::Rng& rng)
    : dim_(dim),
      tokens_(tokens),
      wq_(ScaledInit(dim, dim, rng)),
      wk_(ScaledInit(dim, dim, rng)),
      wv_(ScaledInit(dim, dim, rng)),
      wo_(ScaledInit(dim, dim, rng)) {}

// The per-window products below all go through kernel::GemmBatch: every
// window is a tiny GEMM (tokens×tokens×dim class), so one batched call
// amortizes packing/dispatch across the whole batch instead of paying it
// per window. Each output element keeps the exact ascending-k scalar
// accumulation order of the loops this replaced — bit-identical results.

linalg::Matrix SelfAttention::Forward(const linalg::Matrix& x, bool) {
  TFB_CHECK(x.cols() == dim_);
  TFB_CHECK(x.rows() % tokens_ == 0);
  const std::size_t batch = x.rows() / tokens_;
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim_));

  x_cache_ = x;
  q_cache_ = linalg::MatMul(x, wq_.value);
  k_cache_ = linalg::MatMul(x, wk_.value);
  v_cache_ = linalg::MatMul(x, wv_.value);
  attn_cache_ = linalg::Matrix(x.rows(), tokens_);
  context_cache_ = linalg::Matrix(x.rows(), dim_);

  // scores(i, j) = q_i . k_j per window: A = Q_b, B = K_b^T (stride swap).
  std::vector<linalg::kernel::GemmBatchItem> items(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t base = b * tokens_;
    items[b] = {{q_cache_.row(base), dim_, 1},
                {k_cache_.row(base), 1, dim_},
                attn_cache_.row(base)};
  }
  linalg::kernel::GemmBatch(tokens_, tokens_, dim_, items);

  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t base = b * tokens_;
    for (std::size_t i = 0; i < tokens_; ++i) {
      double* arow = attn_cache_.row(base + i);
      double max_score = -1e300;
      for (std::size_t j = 0; j < tokens_; ++j) {
        const double s = arow[j] * scale;
        arow[j] = s;
        max_score = std::max(max_score, s);
      }
      double denom = 0.0;
      for (std::size_t j = 0; j < tokens_; ++j) {
        const double e = std::exp(arow[j] - max_score);
        arow[j] = e;
        denom += e;
      }
      for (std::size_t j = 0; j < tokens_; ++j) arow[j] /= denom;
    }
  }

  // context = A V per window (k = tokens, ascending j accumulation).
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t base = b * tokens_;
    items[b] = {{attn_cache_.row(base), tokens_, 1},
                {v_cache_.row(base), dim_, 1},
                context_cache_.row(base)};
  }
  linalg::kernel::GemmBatch(tokens_, dim_, tokens_, items);

  linalg::Matrix out = linalg::MatMul(context_cache_, wo_.value);
  out += x;  // residual
  return out;
}

linalg::Matrix SelfAttention::Backward(const linalg::Matrix& grad_output) {
  const std::size_t batch = x_cache_.rows() / tokens_;
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim_));

  // Residual path.
  linalg::Matrix grad_x = grad_output;

  // Output projection.
  wo_.grad += linalg::MatTMul(context_cache_, grad_output);
  linalg::Matrix grad_context = linalg::MatMulT(grad_output, wo_.value);

  linalg::Matrix grad_q(x_cache_.rows(), dim_);
  linalg::Matrix grad_k(x_cache_.rows(), dim_);
  linalg::Matrix grad_v(x_cache_.rows(), dim_);
  linalg::Matrix grad_attn(x_cache_.rows(), tokens_);

  std::vector<linalg::kernel::GemmBatchItem> items(batch);

  // dA(i, j) = dContext_i . v_j per window: dContext_b · V_b^T.
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t base = b * tokens_;
    items[b] = {{grad_context.row(base), dim_, 1},
                {v_cache_.row(base), 1, dim_},
                grad_attn.row(base)};
  }
  linalg::kernel::GemmBatch(tokens_, tokens_, dim_, items);

  // dV = A^T · dContext per window (ascending-i accumulation, as the
  // i-outer scalar loop this replaced).
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t base = b * tokens_;
    items[b] = {{attn_cache_.row(base), 1, tokens_},
                {grad_context.row(base), dim_, 1},
                grad_v.row(base)};
  }
  linalg::kernel::GemmBatch(tokens_, dim_, tokens_, items);

  // Softmax backward, in place on dA: gs = a * (dA - dot) * scale.
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t base = b * tokens_;
    for (std::size_t i = 0; i < tokens_; ++i) {
      double* grow = grad_attn.row(base + i);
      const double* arow = attn_cache_.row(base + i);
      double dot = 0.0;
      for (std::size_t j = 0; j < tokens_; ++j) {
        dot += grow[j] * arow[j];
      }
      for (std::size_t j = 0; j < tokens_; ++j) {
        grow[j] = arow[j] * (grow[j] - dot) * scale;
      }
    }
  }

  // dQ = GS · K and dK = GS^T · Q share one shape — a single 2*batch
  // batched call.
  std::vector<linalg::kernel::GemmBatchItem> qk(2 * batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t base = b * tokens_;
    qk[2 * b] = {{grad_attn.row(base), tokens_, 1},
                 {k_cache_.row(base), dim_, 1},
                 grad_q.row(base)};
    qk[2 * b + 1] = {{grad_attn.row(base), 1, tokens_},
                     {q_cache_.row(base), dim_, 1},
                     grad_k.row(base)};
  }
  linalg::kernel::GemmBatch(tokens_, dim_, tokens_, qk);

  wq_.grad += linalg::MatTMul(x_cache_, grad_q);
  wk_.grad += linalg::MatTMul(x_cache_, grad_k);
  wv_.grad += linalg::MatTMul(x_cache_, grad_v);
  grad_x += linalg::MatMulT(grad_q, wq_.value);
  grad_x += linalg::MatMulT(grad_k, wk_.value);
  grad_x += linalg::MatMulT(grad_v, wv_.value);
  return grad_x;
}

void SelfAttention::CollectParameters(std::vector<Parameter*>* out) {
  out->push_back(&wq_);
  out->push_back(&wk_);
  out->push_back(&wv_);
  out->push_back(&wo_);
}

}  // namespace tfb::nn
