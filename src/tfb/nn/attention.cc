#include "tfb/nn/attention.h"

#include <cmath>

#include "tfb/base/check.h"

namespace tfb::nn {

namespace {

linalg::Matrix ScaledInit(std::size_t in, std::size_t out, stats::Rng& rng) {
  linalg::Matrix w(in, out);
  const double limit = std::sqrt(6.0 / static_cast<double>(in + out));
  for (std::size_t i = 0; i < w.size(); ++i) {
    w.data()[i] = rng.Uniform(-limit, limit);
  }
  return w;
}

}  // namespace

SelfAttention::SelfAttention(std::size_t dim, std::size_t tokens,
                             stats::Rng& rng)
    : dim_(dim),
      tokens_(tokens),
      wq_(ScaledInit(dim, dim, rng)),
      wk_(ScaledInit(dim, dim, rng)),
      wv_(ScaledInit(dim, dim, rng)),
      wo_(ScaledInit(dim, dim, rng)) {}

linalg::Matrix SelfAttention::Forward(const linalg::Matrix& x, bool) {
  TFB_CHECK(x.cols() == dim_);
  TFB_CHECK(x.rows() % tokens_ == 0);
  const std::size_t batch = x.rows() / tokens_;
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim_));

  x_cache_ = x;
  q_cache_ = linalg::MatMul(x, wq_.value);
  k_cache_ = linalg::MatMul(x, wk_.value);
  v_cache_ = linalg::MatMul(x, wv_.value);
  attn_cache_ = linalg::Matrix(x.rows(), tokens_);
  context_cache_ = linalg::Matrix(x.rows(), dim_);

  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t base = b * tokens_;
    // scores(i, j) = q_i . k_j * scale; softmax over j; context = A V.
    for (std::size_t i = 0; i < tokens_; ++i) {
      double* arow = attn_cache_.row(base + i);
      const double* qi = q_cache_.row(base + i);
      double max_score = -1e300;
      for (std::size_t j = 0; j < tokens_; ++j) {
        double s = 0.0;
        const double* kj = k_cache_.row(base + j);
        for (std::size_t c = 0; c < dim_; ++c) s += qi[c] * kj[c];
        s *= scale;
        arow[j] = s;
        max_score = std::max(max_score, s);
      }
      double denom = 0.0;
      for (std::size_t j = 0; j < tokens_; ++j) {
        const double e = std::exp(arow[j] - max_score);
        arow[j] = e;
        denom += e;
      }
      for (std::size_t j = 0; j < tokens_; ++j) arow[j] /= denom;
      double* ctx = context_cache_.row(base + i);
      for (std::size_t j = 0; j < tokens_; ++j) {
        const double a = arow[j];
        const double* vj = v_cache_.row(base + j);
        for (std::size_t c = 0; c < dim_; ++c) ctx[c] += a * vj[c];
      }
    }
  }
  linalg::Matrix out = linalg::MatMul(context_cache_, wo_.value);
  out += x;  // residual
  return out;
}

linalg::Matrix SelfAttention::Backward(const linalg::Matrix& grad_output) {
  const std::size_t batch = x_cache_.rows() / tokens_;
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim_));

  // Residual path.
  linalg::Matrix grad_x = grad_output;

  // Output projection.
  wo_.grad += linalg::MatTMul(context_cache_, grad_output);
  linalg::Matrix grad_context = linalg::MatMulT(grad_output, wo_.value);

  linalg::Matrix grad_q(x_cache_.rows(), dim_);
  linalg::Matrix grad_k(x_cache_.rows(), dim_);
  linalg::Matrix grad_v(x_cache_.rows(), dim_);

  std::vector<double> grad_attn(tokens_);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t base = b * tokens_;
    for (std::size_t i = 0; i < tokens_; ++i) {
      // dA(i, j) = dContext_i . v_j ; dV_j += A(i,j) * dContext_i.
      const double* gctx = grad_context.row(base + i);
      const double* arow = attn_cache_.row(base + i);
      for (std::size_t j = 0; j < tokens_; ++j) {
        const double* vj = v_cache_.row(base + j);
        double s = 0.0;
        for (std::size_t c = 0; c < dim_; ++c) s += gctx[c] * vj[c];
        grad_attn[j] = s;
        double* gv = grad_v.row(base + j);
        const double a = arow[j];
        for (std::size_t c = 0; c < dim_; ++c) gv[c] += a * gctx[c];
      }
      // Softmax backward for row i.
      double dot = 0.0;
      for (std::size_t j = 0; j < tokens_; ++j) {
        dot += grad_attn[j] * arow[j];
      }
      for (std::size_t j = 0; j < tokens_; ++j) {
        const double a = arow[j];
        const double gs = a * (grad_attn[j] - dot) * scale;
        // dQ_i += gs * k_j ; dK_j += gs * q_i.
        double* gq = grad_q.row(base + i);
        double* gk = grad_k.row(base + j);
        const double* kj = k_cache_.row(base + j);
        const double* qi = q_cache_.row(base + i);
        for (std::size_t c = 0; c < dim_; ++c) {
          gq[c] += gs * kj[c];
          gk[c] += gs * qi[c];
        }
      }
    }
  }

  wq_.grad += linalg::MatTMul(x_cache_, grad_q);
  wk_.grad += linalg::MatTMul(x_cache_, grad_k);
  wv_.grad += linalg::MatTMul(x_cache_, grad_v);
  grad_x += linalg::MatMulT(grad_q, wq_.value);
  grad_x += linalg::MatMulT(grad_k, wk_.value);
  grad_x += linalg::MatMulT(grad_v, wv_.value);
  return grad_x;
}

void SelfAttention::CollectParameters(std::vector<Parameter*>* out) {
  out->push_back(&wq_);
  out->push_back(&wk_);
  out->push_back(&wv_);
  out->push_back(&wo_);
}

}  // namespace tfb::nn
