#include "tfb/nn/nets.h"

#include <algorithm>
#include <cmath>

#include "tfb/base/check.h"

namespace tfb::nn {

linalg::Matrix Reshape(linalg::Matrix m, std::size_t rows, std::size_t cols) {
  TFB_CHECK(m.size() == rows * cols);
  // Row-major reshape is a metadata change: re-wrap the storage, no copy.
  return linalg::Matrix::FromRowMajor(rows, cols, m.TakeData());
}

linalg::Matrix FixedLinear::Forward(const linalg::Matrix& x, bool) {
  return linalg::MatMul(x, w_);
}

linalg::Matrix FixedLinear::Backward(const linalg::Matrix& grad_output) {
  return linalg::MatMulT(grad_output, w_);
}

linalg::Matrix DftFeatureMatrix(std::size_t seq_len, std::size_t num_freqs) {
  linalg::Matrix w(seq_len, 2 * num_freqs);
  for (std::size_t t = 0; t < seq_len; ++t) {
    for (std::size_t k = 0; k < num_freqs; ++k) {
      const double angle = 2.0 * M_PI * static_cast<double>(k) *
                           static_cast<double>(t) /
                           static_cast<double>(seq_len);
      w(t, 2 * k) = std::cos(angle);
      w(t, 2 * k + 1) = std::sin(angle);
    }
  }
  // Scale for unit-ish variance of the features.
  w *= 1.0 / std::sqrt(static_cast<double>(seq_len));
  return w;
}

linalg::Matrix LegendreFeatureMatrix(std::size_t seq_len,
                                     std::size_t degree) {
  TFB_CHECK(degree >= 1);
  linalg::Matrix w(seq_len, degree);
  for (std::size_t t = 0; t < seq_len; ++t) {
    const double x =
        seq_len > 1
            ? 2.0 * static_cast<double>(t) / static_cast<double>(seq_len - 1) -
                  1.0
            : 0.0;
    // Bonnet recursion: (k+1) P_{k+1} = (2k+1) x P_k - k P_{k-1}.
    double p_prev = 1.0;
    double p = x;
    for (std::size_t k = 0; k < degree; ++k) {
      if (k == 0) {
        w(t, k) = 1.0;
      } else if (k == 1) {
        w(t, k) = x;
      } else {
        const double next =
            ((2.0 * (k - 1) + 1.0) * x * p - (k - 1) * p_prev) /
            static_cast<double>(k);
        p_prev = p;
        p = next;
        w(t, k) = next;
      }
    }
  }
  // Scale each column to unit norm so all modes feed the linear head at
  // comparable magnitude.
  for (std::size_t k = 0; k < degree; ++k) {
    double norm = 0.0;
    for (std::size_t t = 0; t < seq_len; ++t) norm += w(t, k) * w(t, k);
    norm = std::sqrt(std::max(norm, 1e-12));
    for (std::size_t t = 0; t < seq_len; ++t) w(t, k) /= norm;
  }
  return w;
}

linalg::Matrix MovingAverageMatrix(std::size_t seq_len, std::size_t kernel) {
  TFB_CHECK(kernel >= 1);
  linalg::Matrix m(seq_len, seq_len);
  const std::ptrdiff_t lo = -static_cast<std::ptrdiff_t>((kernel - 1) / 2);
  const std::ptrdiff_t hi = static_cast<std::ptrdiff_t>(kernel / 2);
  const double inv = 1.0 / static_cast<double>(kernel);
  for (std::size_t j = 0; j < seq_len; ++j) {
    for (std::ptrdiff_t o = lo; o <= hi; ++o) {
      std::ptrdiff_t src = static_cast<std::ptrdiff_t>(j) + o;
      src = std::clamp<std::ptrdiff_t>(src, 0,
                                       static_cast<std::ptrdiff_t>(seq_len) - 1);
      m(static_cast<std::size_t>(src), j) += inv;
    }
  }
  return m;
}

DLinearNet::DLinearNet(std::size_t seq_len, std::size_t horizon,
                       std::size_t ma_kernel, stats::Rng& rng)
    : ma_(MovingAverageMatrix(seq_len, ma_kernel)),
      trend_head_(seq_len, horizon, rng),
      seasonal_head_(seq_len, horizon, rng) {}

linalg::Matrix DLinearNet::Forward(const linalg::Matrix& x, bool training) {
  linalg::Matrix trend = linalg::MatMul(x, ma_);
  linalg::Matrix seasonal = x;
  seasonal -= trend;
  linalg::Matrix out = trend_head_.Forward(trend, training);
  out += seasonal_head_.Forward(seasonal, training);
  return out;
}

linalg::Matrix DLinearNet::Backward(const linalg::Matrix& grad_output) {
  const linalg::Matrix dt = trend_head_.Backward(grad_output);
  const linalg::Matrix ds = seasonal_head_.Backward(grad_output);
  // x -> trend is x*M; x -> seasonal is x*(I - M).
  linalg::Matrix diff = dt;
  diff -= ds;
  linalg::Matrix grad = linalg::MatMulT(diff, ma_);
  grad += ds;
  return grad;
}

void DLinearNet::CollectParameters(std::vector<Parameter*>* out) {
  trend_head_.CollectParameters(out);
  seasonal_head_.CollectParameters(out);
}

PatchAttentionNet::PatchAttentionNet(std::size_t seq_len, std::size_t horizon,
                                     std::size_t num_patches,
                                     std::size_t model_dim, stats::Rng& rng)
    : seq_len_(seq_len),
      num_patches_(num_patches),
      patch_len_(seq_len / num_patches),
      model_dim_(model_dim),
      embed_(patch_len_, model_dim, rng),
      norm1_(model_dim),
      attention_(model_dim, num_patches, rng),
      norm2_(model_dim),
      ffn1_(model_dim, 2 * model_dim, rng),
      ffn2_(2 * model_dim, model_dim, rng),
      head_(num_patches * model_dim, horizon, rng) {
  TFB_CHECK_MSG(seq_len % num_patches == 0,
                "seq_len must be divisible by num_patches");
}

linalg::Matrix PatchAttentionNet::Forward(const linalg::Matrix& x,
                                          bool training) {
  const std::size_t batch = x.rows();
  TFB_CHECK(x.cols() == seq_len_);
  linalg::Matrix tokens =
      Reshape(x, batch * num_patches_, patch_len_);
  linalg::Matrix e = embed_.Forward(tokens, training);
  linalg::Matrix n1 = norm1_.Forward(e, training);
  linalg::Matrix a = attention_.Forward(n1, training);
  linalg::Matrix n2 = norm2_.Forward(a, training);
  ffn_input_cache_ = n2;
  linalg::Matrix f = ffn2_.Forward(
      ffn_act_.Forward(ffn1_.Forward(n2, training), training), training);
  f += a;  // residual around the FFN
  linalg::Matrix flat = Reshape(std::move(f), batch,
                                num_patches_ * model_dim_);
  return head_.Forward(flat, training);
}

linalg::Matrix PatchAttentionNet::Backward(const linalg::Matrix& grad_output) {
  const std::size_t batch = grad_output.rows();
  linalg::Matrix dflat = head_.Backward(grad_output);
  linalg::Matrix dtok =
      Reshape(std::move(dflat), batch * num_patches_, model_dim_);
  // Residual split: gradient reaches both the FFN branch and `a` directly.
  linalg::Matrix da = dtok;
  linalg::Matrix dn2 = ffn1_.Backward(
      ffn_act_.Backward(ffn2_.Backward(dtok)));
  da += norm2_.Backward(dn2);
  linalg::Matrix dn1 = attention_.Backward(da);
  linalg::Matrix de = norm1_.Backward(dn1);
  linalg::Matrix dpatch = embed_.Backward(de);
  return Reshape(std::move(dpatch), batch, seq_len_);
}

void PatchAttentionNet::CollectParameters(std::vector<Parameter*>* out) {
  embed_.CollectParameters(out);
  norm1_.CollectParameters(out);
  attention_.CollectParameters(out);
  norm2_.CollectParameters(out);
  ffn1_.CollectParameters(out);
  ffn2_.CollectParameters(out);
  head_.CollectParameters(out);
}

CrossAttentionNet::CrossAttentionNet(std::size_t seq_len, std::size_t horizon,
                                     std::size_t num_channels,
                                     std::size_t model_dim, stats::Rng& rng)
    : seq_len_(seq_len),
      horizon_(horizon),
      num_channels_(num_channels),
      model_dim_(model_dim),
      embed_(seq_len, model_dim, rng),
      norm_(model_dim),
      attention_(model_dim, num_channels, rng),
      head_(model_dim, horizon, rng) {}

linalg::Matrix CrossAttentionNet::Forward(const linalg::Matrix& x,
                                          bool training) {
  const std::size_t batch = x.rows();
  TFB_CHECK(x.cols() == num_channels_ * seq_len_);
  linalg::Matrix tokens = Reshape(x, batch * num_channels_, seq_len_);
  linalg::Matrix e = embed_.Forward(tokens, training);
  linalg::Matrix n = norm_.Forward(e, training);
  linalg::Matrix a = attention_.Forward(n, training);
  linalg::Matrix h = head_.Forward(a, training);  // (B*N x H)
  return Reshape(std::move(h), batch, num_channels_ * horizon_);
}

linalg::Matrix CrossAttentionNet::Backward(const linalg::Matrix& grad_output) {
  const std::size_t batch = grad_output.rows();
  linalg::Matrix dh =
      Reshape(grad_output, batch * num_channels_, horizon_);
  linalg::Matrix da = head_.Backward(dh);
  linalg::Matrix dn = attention_.Backward(da);
  linalg::Matrix de = norm_.Backward(dn);
  linalg::Matrix dtok = embed_.Backward(de);
  return Reshape(std::move(dtok), batch, num_channels_ * seq_len_);
}

void CrossAttentionNet::CollectParameters(std::vector<Parameter*>* out) {
  embed_.CollectParameters(out);
  norm_.CollectParameters(out);
  attention_.CollectParameters(out);
  head_.CollectParameters(out);
}

NBeatsNet::NBeatsNet(std::size_t seq_len, std::size_t horizon, int num_blocks,
                     std::size_t hidden, stats::Rng& rng)
    : seq_len_(seq_len), horizon_(horizon) {
  for (int i = 0; i < num_blocks; ++i) {
    auto block = std::make_unique<Block>(
        Block{Sequential(), Dense(hidden, seq_len, rng),
              Dense(hidden, horizon, rng), linalg::Matrix()});
    block->body.Add(std::make_unique<Dense>(seq_len, hidden, rng));
    block->body.Add(std::make_unique<Relu>());
    block->body.Add(std::make_unique<Dense>(hidden, hidden, rng));
    block->body.Add(std::make_unique<Relu>());
    blocks_.push_back(std::move(block));
  }
}

linalg::Matrix NBeatsNet::Forward(const linalg::Matrix& x, bool training) {
  TFB_CHECK(x.cols() == seq_len_);
  linalg::Matrix residual = x;
  linalg::Matrix total(x.rows(), horizon_);
  for (auto& block : blocks_) {
    block->body_out_cache = block->body.Forward(residual, training);
    const linalg::Matrix back =
        block->backcast.Forward(block->body_out_cache, training);
    total += block->forecast.Forward(block->body_out_cache, training);
    residual -= back;
  }
  return total;
}

linalg::Matrix NBeatsNet::Backward(const linalg::Matrix& grad_output) {
  // dr = gradient w.r.t. the residual leaving block i (initially the unused
  // final residual, hence zero).
  linalg::Matrix dr(grad_output.rows(), seq_len_);
  for (std::size_t i = blocks_.size(); i-- > 0;) {
    Block& block = *blocks_[i];
    linalg::Matrix dbody = block.forecast.Backward(grad_output);
    // r_{i+1} = r_i - back_i: backcast receives -dr.
    linalg::Matrix neg_dr = dr;
    neg_dr *= -1.0;
    dbody += block.backcast.Backward(neg_dr);
    dr += block.body.Backward(dbody);
  }
  return dr;
}

void NBeatsNet::CollectParameters(std::vector<Parameter*>* out) {
  for (auto& block : blocks_) {
    block->body.CollectParameters(out);
    block->backcast.CollectParameters(out);
    block->forecast.CollectParameters(out);
  }
}

}  // namespace tfb::nn
