#ifndef TFB_NN_TRAINER_H_
#define TFB_NN_TRAINER_H_

#include <vector>

#include "tfb/nn/module.h"

namespace tfb::nn {

/// Adam optimizer (Kingma & Ba 2015) over a fixed parameter list.
class Adam {
 public:
  explicit Adam(std::vector<Parameter*> params, double lr = 1e-3,
                double beta1 = 0.9, double beta2 = 0.999,
                double weight_decay = 0.0);

  /// Applies one update from the accumulated gradients, then zeroes them.
  void Step();

  /// Zeroes all parameter gradients without updating.
  void ZeroGrad();

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 private:
  std::vector<Parameter*> params_;
  std::vector<linalg::Matrix> m_;
  std::vector<linalg::Matrix> v_;
  double lr_;
  double beta1_;
  double beta2_;
  double weight_decay_;
  long step_ = 0;
};

/// Options for the mini-batch MSE training loop. Matches the paper's
/// protocol: L2 loss, Adam, batch size 32, validation-based early stopping.
struct TrainOptions {
  int max_epochs = 60;
  std::size_t batch_size = 32;
  double learning_rate = 1e-3;
  double weight_decay = 0.0;
  int patience = 6;          ///< Early-stopping patience (epochs).
  double val_fraction = 0.2; ///< Trailing fraction of windows held out.
  std::uint64_t seed = 2024;
  double grad_clip = 5.0;    ///< Global-norm gradient clipping; 0 disables.
};

/// Result of a training run.
struct TrainResult {
  int epochs_run = 0;
  double best_val_loss = 0.0;
  double final_train_loss = 0.0;
};

/// Trains `model` to map X rows to Y rows under MSE with Adam and early
/// stopping on a chronologically held-out validation tail. The model's
/// parameter values at the best validation epoch are restored on exit.
TrainResult TrainMse(Module& model, const linalg::Matrix& x,
                     const linalg::Matrix& y, const TrainOptions& options);

/// Mean squared error between predictions and targets (all elements).
double MseLoss(const linalg::Matrix& pred, const linalg::Matrix& target);

}  // namespace tfb::nn

#endif  // TFB_NN_TRAINER_H_
