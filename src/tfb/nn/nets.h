#ifndef TFB_NN_NETS_H_
#define TFB_NN_NETS_H_

#include <memory>

#include "tfb/nn/attention.h"
#include "tfb/nn/module.h"

namespace tfb::nn {

/// Reinterprets a row-major matrix as a different shape over the same
/// buffer (rows*cols must be preserved).
linalg::Matrix Reshape(linalg::Matrix m, std::size_t rows, std::size_t cols);

/// Linear map through a fixed (non-trainable) matrix W: y = x W. Used for
/// the DFT front-end of the FrequencyLinear forecaster and the moving-
/// average filter inside DLinear — transforms whose gradients flow through
/// but whose weights never update.
class FixedLinear : public Module {
 public:
  explicit FixedLinear(linalg::Matrix w) : w_(std::move(w)) {}

  linalg::Matrix Forward(const linalg::Matrix& x, bool training) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_output) override;

 private:
  linalg::Matrix w_;
};

/// Builds the (L x 2K) real DFT feature matrix: column pairs are
/// cos/sin(2*pi*k*t/L) for k = 0..K-1. x * W gives the low-frequency
/// spectrum of each window.
linalg::Matrix DftFeatureMatrix(std::size_t seq_len, std::size_t num_freqs);

/// Builds the (L x K) Legendre feature matrix: column k is the Legendre
/// polynomial P_k evaluated on the window's [-1, 1] time grid and scaled to
/// unit norm. x * W projects each window onto the first K Legendre modes —
/// the memory representation of FiLM (Zhou et al. 2022).
linalg::Matrix LegendreFeatureMatrix(std::size_t seq_len, std::size_t degree);

/// Builds the (L x L) replicate-padded centered moving-average matrix used
/// by DLinear's trend/seasonal decomposition (AvgPool1d analogue).
linalg::Matrix MovingAverageMatrix(std::size_t seq_len, std::size_t kernel);

/// DLinear (Zeng et al. 2023): decomposes each window into trend (moving
/// average) and seasonal (residual) parts and forecasts each with its own
/// linear layer: y = Dense_t(MA x) + Dense_s(x - MA x).
class DLinearNet : public Module {
 public:
  DLinearNet(std::size_t seq_len, std::size_t horizon, std::size_t ma_kernel,
             stats::Rng& rng);

  linalg::Matrix Forward(const linalg::Matrix& x, bool training) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;

 private:
  linalg::Matrix ma_;  // (L x L) fixed filter
  Dense trend_head_;
  Dense seasonal_head_;
};

/// PatchTST-mini: splits each (channel-independent) window into
/// `num_patches` contiguous patches, embeds each patch, applies single-head
/// self-attention across patches plus a feed-forward sublayer (both with
/// residuals and layer norm), then flattens to a linear forecast head.
class PatchAttentionNet : public Module {
 public:
  PatchAttentionNet(std::size_t seq_len, std::size_t horizon,
                    std::size_t num_patches, std::size_t model_dim,
                    stats::Rng& rng);

  linalg::Matrix Forward(const linalg::Matrix& x, bool training) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;

 private:
  std::size_t seq_len_;
  std::size_t num_patches_;
  std::size_t patch_len_;
  std::size_t model_dim_;
  Dense embed_;
  LayerNorm norm1_;
  SelfAttention attention_;
  LayerNorm norm2_;
  Dense ffn1_;
  Gelu ffn_act_;
  Dense ffn2_;
  Dense head_;
  linalg::Matrix ffn_input_cache_;
};

/// Crossformer-mini: embeds each channel's whole window as one token and
/// attends across channels (explicit channel dependence), then forecasts
/// each channel from its attended embedding. Input (B x N*L) channel-major,
/// output (B x N*H).
class CrossAttentionNet : public Module {
 public:
  CrossAttentionNet(std::size_t seq_len, std::size_t horizon,
                    std::size_t num_channels, std::size_t model_dim,
                    stats::Rng& rng);

  linalg::Matrix Forward(const linalg::Matrix& x, bool training) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;

 private:
  std::size_t seq_len_;
  std::size_t horizon_;
  std::size_t num_channels_;
  std::size_t model_dim_;
  Dense embed_;
  LayerNorm norm_;
  SelfAttention attention_;
  Dense head_;
};

/// N-BEATS-mini (Oreshkin et al. 2019): a stack of fully connected blocks,
/// each emitting a backcast (subtracted from the running residual) and a
/// forecast (accumulated into the output).
class NBeatsNet : public Module {
 public:
  NBeatsNet(std::size_t seq_len, std::size_t horizon, int num_blocks,
            std::size_t hidden, stats::Rng& rng);

  linalg::Matrix Forward(const linalg::Matrix& x, bool training) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;

 private:
  struct Block {
    Sequential body;       // L -> hidden -> hidden
    Dense backcast;        // hidden -> L
    Dense forecast;        // hidden -> H
    linalg::Matrix body_out_cache;
  };

  std::size_t seq_len_;
  std::size_t horizon_;
  std::vector<std::unique_ptr<Block>> blocks_;
};

}  // namespace tfb::nn

#endif  // TFB_NN_NETS_H_
