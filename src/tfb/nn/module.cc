#include "tfb/nn/module.h"

#include <cmath>

#include "tfb/base/check.h"

namespace tfb::nn {

void Module::CollectParameters(std::vector<Parameter*>*) {}

namespace {

linalg::Matrix GlorotUniform(std::size_t in, std::size_t out,
                             stats::Rng& rng) {
  linalg::Matrix w(in, out);
  const double limit = std::sqrt(6.0 / static_cast<double>(in + out));
  for (std::size_t i = 0; i < in; ++i) {
    for (std::size_t j = 0; j < out; ++j) {
      w(i, j) = rng.Uniform(-limit, limit);
    }
  }
  return w;
}

}  // namespace

Dense::Dense(std::size_t in, std::size_t out, stats::Rng& rng)
    : weight_(GlorotUniform(in, out, rng)), bias_(linalg::Matrix(1, out)) {}

linalg::Matrix Dense::Forward(const linalg::Matrix& x, bool) {
  input_cache_ = x;
  linalg::Matrix out = linalg::MatMul(x, weight_.value);
  const double* bias = bias_.value.data();
  const std::size_t cols = out.cols();
  for (std::size_t r = 0; r < out.rows(); ++r) {
    double* orow = out.row(r);
    for (std::size_t c = 0; c < cols; ++c) orow[c] += bias[c];
  }
  return out;
}

linalg::Matrix Dense::Backward(const linalg::Matrix& grad_output) {
  weight_.grad += linalg::MatTMul(input_cache_, grad_output);
  double* bias_grad = bias_.grad.data();
  const std::size_t cols = grad_output.cols();
  for (std::size_t r = 0; r < grad_output.rows(); ++r) {
    const double* grow = grad_output.row(r);
    for (std::size_t c = 0; c < cols; ++c) bias_grad[c] += grow[c];
  }
  return linalg::MatMulT(grad_output, weight_.value);
}

void Dense::CollectParameters(std::vector<Parameter*>* out) {
  out->push_back(&weight_);
  out->push_back(&bias_);
}

linalg::Matrix Relu::Forward(const linalg::Matrix& x, bool) {
  input_cache_ = x;
  linalg::Matrix out = x;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out.data()[i] < 0.0) out.data()[i] = 0.0;
  }
  return out;
}

linalg::Matrix Relu::Backward(const linalg::Matrix& grad_output) {
  linalg::Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (input_cache_.data()[i] <= 0.0) grad.data()[i] = 0.0;
  }
  return grad;
}

namespace {
constexpr double kGeluC = 0.7978845608028654;  // sqrt(2/pi)
}

linalg::Matrix Gelu::Forward(const linalg::Matrix& x, bool) {
  input_cache_ = x;
  linalg::Matrix out = x;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double v = out.data()[i];
    out.data()[i] =
        0.5 * v * (1.0 + std::tanh(kGeluC * (v + 0.044715 * v * v * v)));
  }
  return out;
}

linalg::Matrix Gelu::Backward(const linalg::Matrix& grad_output) {
  linalg::Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const double v = input_cache_.data()[i];
    const double inner = kGeluC * (v + 0.044715 * v * v * v);
    const double t = std::tanh(inner);
    const double dinner = kGeluC * (1.0 + 3.0 * 0.044715 * v * v);
    const double d = 0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * dinner;
    grad.data()[i] *= d;
  }
  return grad;
}

linalg::Matrix Tanh::Forward(const linalg::Matrix& x, bool) {
  linalg::Matrix out = x;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = std::tanh(out.data()[i]);
  }
  output_cache_ = out;
  return out;
}

linalg::Matrix Tanh::Backward(const linalg::Matrix& grad_output) {
  linalg::Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const double t = output_cache_.data()[i];
    grad.data()[i] *= 1.0 - t * t;
  }
  return grad;
}

linalg::Matrix Dropout::Forward(const linalg::Matrix& x, bool training) {
  active_ = training && rate_ > 0.0;
  if (!active_) return x;
  mask_ = linalg::Matrix(x.rows(), x.cols());
  linalg::Matrix out = x;
  const double scale = 1.0 / (1.0 - rate_);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double keep = rng_.Bernoulli(1.0 - rate_) ? scale : 0.0;
    mask_.data()[i] = keep;
    out.data()[i] *= keep;
  }
  return out;
}

linalg::Matrix Dropout::Backward(const linalg::Matrix& grad_output) {
  if (!active_) return grad_output;
  linalg::Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    grad.data()[i] *= mask_.data()[i];
  }
  return grad;
}

LayerNorm::LayerNorm(std::size_t dim)
    : gamma_(linalg::Matrix(1, dim, 1.0)), beta_(linalg::Matrix(1, dim)) {}

linalg::Matrix LayerNorm::Forward(const linalg::Matrix& x, bool) {
  const std::size_t rows = x.rows();
  const std::size_t d = x.cols();
  normalized_cache_ = linalg::Matrix(rows, d);
  inv_std_cache_.assign(rows, 0.0);
  linalg::Matrix out(rows, d);
  for (std::size_t r = 0; r < rows; ++r) {
    double mean = 0.0;
    for (std::size_t c = 0; c < d; ++c) mean += x(r, c);
    mean /= static_cast<double>(d);
    double var = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double dv = x(r, c) - mean;
      var += dv * dv;
    }
    var /= static_cast<double>(d);
    const double inv_std = 1.0 / std::sqrt(var + 1e-6);
    inv_std_cache_[r] = inv_std;
    for (std::size_t c = 0; c < d; ++c) {
      const double norm = (x(r, c) - mean) * inv_std;
      normalized_cache_(r, c) = norm;
      out(r, c) = norm * gamma_.value(0, c) + beta_.value(0, c);
    }
  }
  return out;
}

linalg::Matrix LayerNorm::Backward(const linalg::Matrix& grad_output) {
  const std::size_t rows = grad_output.rows();
  const std::size_t d = grad_output.cols();
  linalg::Matrix grad(rows, d);
  for (std::size_t r = 0; r < rows; ++r) {
    double sum_g = 0.0;
    double sum_gn = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double g = grad_output(r, c) * gamma_.value(0, c);
      sum_g += g;
      sum_gn += g * normalized_cache_(r, c);
      gamma_.grad(0, c) += grad_output(r, c) * normalized_cache_(r, c);
      beta_.grad(0, c) += grad_output(r, c);
    }
    const double inv_d = 1.0 / static_cast<double>(d);
    for (std::size_t c = 0; c < d; ++c) {
      const double g = grad_output(r, c) * gamma_.value(0, c);
      grad(r, c) = inv_std_cache_[r] *
                   (g - inv_d * sum_g -
                    normalized_cache_(r, c) * inv_d * sum_gn);
    }
  }
  return grad;
}

void LayerNorm::CollectParameters(std::vector<Parameter*>* out) {
  out->push_back(&gamma_);
  out->push_back(&beta_);
}

Sequential& Sequential::Add(std::unique_ptr<Module> module) {
  modules_.push_back(std::move(module));
  return *this;
}

linalg::Matrix Sequential::Forward(const linalg::Matrix& x, bool training) {
  linalg::Matrix out = x;
  for (auto& m : modules_) out = m->Forward(out, training);
  return out;
}

linalg::Matrix Sequential::Backward(const linalg::Matrix& grad_output) {
  linalg::Matrix grad = grad_output;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    grad = (*it)->Backward(grad);
  }
  return grad;
}

void Sequential::CollectParameters(std::vector<Parameter*>* out) {
  for (auto& m : modules_) m->CollectParameters(out);
}

std::size_t CountParameters(const std::vector<Parameter*>& params) {
  std::size_t total = 0;
  for (const Parameter* p : params) total += p->value.size();
  return total;
}

}  // namespace tfb::nn
