#ifndef TFB_NN_ATTENTION_H_
#define TFB_NN_ATTENTION_H_

#include "tfb/nn/module.h"

namespace tfb::nn {

/// Single-head scaled dot-product self-attention over fixed-length token
/// groups. Input is (B*T x d) with each sample's T tokens stored in
/// consecutive rows (which is the same buffer as a (B x T*d) matrix, so
/// models reinterpret for free). A residual connection is built in:
/// output = input + Attention(input).
///
/// This is the attention core of the PatchAttention (PatchTST-mini,
/// tokens = temporal patches) and CrossAttention (Crossformer-mini,
/// tokens = channels) forecasters.
class SelfAttention : public Module {
 public:
  /// `dim` is the model width d; `tokens` the group size T.
  SelfAttention(std::size_t dim, std::size_t tokens, stats::Rng& rng);

  linalg::Matrix Forward(const linalg::Matrix& x, bool training) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;

 private:
  std::size_t dim_;
  std::size_t tokens_;
  Parameter wq_;
  Parameter wk_;
  Parameter wv_;
  Parameter wo_;

  // Forward caches.
  linalg::Matrix x_cache_;
  linalg::Matrix q_cache_;
  linalg::Matrix k_cache_;
  linalg::Matrix v_cache_;
  linalg::Matrix attn_cache_;  // (B*T x T) softmax weights per sample block
  linalg::Matrix context_cache_;
};

}  // namespace tfb::nn

#endif  // TFB_NN_ATTENTION_H_
