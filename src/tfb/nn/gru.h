#ifndef TFB_NN_GRU_H_
#define TFB_NN_GRU_H_

#include "tfb/nn/module.h"

namespace tfb::nn {

/// Gated recurrent unit over scalar input sequences: maps a batch of
/// length-L windows (B x L) to the final hidden state (B x hidden) via the
/// standard GRU recursion with full backpropagation through time. The
/// recurrent core of the RNN-family forecaster.
class GruLayer : public Module {
 public:
  GruLayer(std::size_t seq_len, std::size_t hidden, stats::Rng& rng);

  linalg::Matrix Forward(const linalg::Matrix& x, bool training) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;

 private:
  std::size_t seq_len_;
  std::size_t hidden_;
  // Input weights (1 x hidden), recurrent weights (hidden x hidden),
  // biases (1 x hidden), for the update (z), reset (r) and candidate (c)
  // gates.
  Parameter wz_, wr_, wc_;
  Parameter uz_, ur_, uc_;
  Parameter bz_, br_, bc_;

  // Per-timestep caches, each (B x hidden); inputs cached as (B x L).
  linalg::Matrix x_cache_;
  std::vector<linalg::Matrix> h_cache_;  // h_{-1}..h_{L-1} (L+1 entries)
  std::vector<linalg::Matrix> z_cache_;
  std::vector<linalg::Matrix> r_cache_;
  std::vector<linalg::Matrix> c_cache_;
};

}  // namespace tfb::nn

#endif  // TFB_NN_GRU_H_
