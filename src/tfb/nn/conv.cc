#include "tfb/nn/conv.h"

#include <cmath>

#include "tfb/base/check.h"

namespace tfb::nn {

CausalConvStack::CausalConvStack(std::size_t seq_len, std::size_t channels,
                                 std::vector<std::size_t> dilations,
                                 std::size_t kernel, stats::Rng& rng)
    : seq_len_(seq_len), channels_(channels), kernel_(kernel) {
  TFB_CHECK(!dilations.empty() && kernel >= 1);
  std::size_t in_channels = 1;
  for (std::size_t d : dilations) {
    const double scale =
        std::sqrt(2.0 / static_cast<double>(in_channels * kernel));
    linalg::Matrix w(channels, in_channels * kernel);
    for (std::size_t i = 0; i < w.size(); ++i) {
      w.data()[i] = rng.Gaussian(0.0, scale);
    }
    layers_.push_back(Layer{Parameter(std::move(w)),
                            Parameter(linalg::Matrix(1, channels)),
                            in_channels, d, in_channels == channels});
    in_channels = channels;
  }
}

linalg::Matrix CausalConvStack::Forward(const linalg::Matrix& x, bool) {
  TFB_CHECK(x.cols() == seq_len_);
  const std::size_t batch = x.rows();
  inputs_cache_.clear();
  preact_cache_.clear();

  linalg::Matrix current = x;  // (B x in_channels*L), first layer Cin=1
  for (const Layer& layer : layers_) {
    inputs_cache_.push_back(current);
    linalg::Matrix pre(batch, channels_ * seq_len_);
    for (std::size_t b = 0; b < batch; ++b) {
      const double* in = current.row(b);
      double* out = pre.row(b);
      for (std::size_t co = 0; co < channels_; ++co) {
        const double* w = layer.weight.value.row(co);
        const double bias = layer.bias.value(0, co);
        for (std::size_t t = 0; t < seq_len_; ++t) {
          double sum = bias;
          for (std::size_t ci = 0; ci < layer.in_channels; ++ci) {
            for (std::size_t j = 0; j < kernel_; ++j) {
              const std::ptrdiff_t src =
                  static_cast<std::ptrdiff_t>(t) -
                  static_cast<std::ptrdiff_t>(j * layer.dilation);
              if (src < 0) continue;
              sum += w[ci * kernel_ + j] * in[ci * seq_len_ + src];
            }
          }
          out[co * seq_len_ + t] = sum;
        }
      }
    }
    preact_cache_.push_back(pre);
    // ReLU + residual.
    linalg::Matrix activated = pre;
    for (std::size_t i = 0; i < activated.size(); ++i) {
      if (activated.data()[i] < 0.0) activated.data()[i] = 0.0;
    }
    if (layer.residual) activated += current;
    current = std::move(activated);
  }

  // Final features: last time-step values of every channel.
  linalg::Matrix out(batch, channels_);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels_; ++c) {
      out(b, c) = current(b, c * seq_len_ + seq_len_ - 1);
    }
  }
  inputs_cache_.push_back(std::move(current));  // post-stack activations
  return out;
}

linalg::Matrix CausalConvStack::Backward(const linalg::Matrix& grad_output) {
  const std::size_t batch = grad_output.rows();
  // Seed gradient at the last time step of the top activations.
  linalg::Matrix grad(batch, channels_ * seq_len_);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels_; ++c) {
      grad(b, c * seq_len_ + seq_len_ - 1) = grad_output(b, c);
    }
  }

  for (std::size_t li = layers_.size(); li-- > 0;) {
    Layer& layer = layers_[li];
    const linalg::Matrix& pre = preact_cache_[li];
    const linalg::Matrix& input = inputs_cache_[li];

    // Residual passes gradient straight through to the layer input.
    linalg::Matrix grad_input(batch, layer.in_channels * seq_len_);
    if (layer.residual) grad_input = grad;

    // ReLU mask on the conv path.
    linalg::Matrix grad_pre = grad;
    for (std::size_t i = 0; i < grad_pre.size(); ++i) {
      if (pre.data()[i] <= 0.0) grad_pre.data()[i] = 0.0;
    }

    for (std::size_t b = 0; b < batch; ++b) {
      const double* in = input.row(b);
      const double* gp = grad_pre.row(b);
      double* gi = grad_input.row(b);
      for (std::size_t co = 0; co < channels_; ++co) {
        const double* w = layer.weight.value.row(co);
        double* gw = layer.weight.grad.row(co);
        double gb = 0.0;
        for (std::size_t t = 0; t < seq_len_; ++t) {
          const double g = gp[co * seq_len_ + t];
          if (g == 0.0) continue;
          gb += g;
          for (std::size_t ci = 0; ci < layer.in_channels; ++ci) {
            for (std::size_t j = 0; j < kernel_; ++j) {
              const std::ptrdiff_t src =
                  static_cast<std::ptrdiff_t>(t) -
                  static_cast<std::ptrdiff_t>(j * layer.dilation);
              if (src < 0) continue;
              gw[ci * kernel_ + j] += g * in[ci * seq_len_ + src];
              gi[ci * seq_len_ + src] += g * w[ci * kernel_ + j];
            }
          }
        }
        layer.bias.grad(0, co) += gb;
      }
    }
    grad = std::move(grad_input);
  }
  return grad;  // (B x 1*L) = gradient w.r.t. the scalar input windows
}

void CausalConvStack::CollectParameters(std::vector<Parameter*>* out) {
  for (Layer& layer : layers_) {
    out->push_back(&layer.weight);
    out->push_back(&layer.bias);
  }
}

}  // namespace tfb::nn
