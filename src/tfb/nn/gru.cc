#include "tfb/nn/gru.h"

#include <cmath>

#include "tfb/base/check.h"
#include "tfb/linalg/gemm.h"

namespace tfb::nn {

namespace {

double SigmoidScalar(double x) { return 1.0 / (1.0 + std::exp(-x)); }

linalg::Matrix SmallInit(std::size_t rows, std::size_t cols, stats::Rng& rng,
                         double scale) {
  linalg::Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng.Gaussian(0.0, scale);
  }
  return m;
}

}  // namespace

GruLayer::GruLayer(std::size_t seq_len, std::size_t hidden, stats::Rng& rng)
    : seq_len_(seq_len),
      hidden_(hidden),
      wz_(SmallInit(1, hidden, rng, 0.3)),
      wr_(SmallInit(1, hidden, rng, 0.3)),
      wc_(SmallInit(1, hidden, rng, 0.3)),
      uz_(SmallInit(hidden, hidden, rng, 1.0 / std::sqrt(hidden))),
      ur_(SmallInit(hidden, hidden, rng, 1.0 / std::sqrt(hidden))),
      uc_(SmallInit(hidden, hidden, rng, 1.0 / std::sqrt(hidden))),
      bz_(linalg::Matrix(1, hidden)),
      br_(linalg::Matrix(1, hidden)),
      bc_(linalg::Matrix(1, hidden)) {}

linalg::Matrix GruLayer::Forward(const linalg::Matrix& x, bool) {
  TFB_CHECK(x.cols() == seq_len_);
  const std::size_t batch = x.rows();
  x_cache_ = x;
  h_cache_.assign(seq_len_ + 1, linalg::Matrix(batch, hidden_));
  z_cache_.assign(seq_len_, linalg::Matrix(batch, hidden_));
  r_cache_.assign(seq_len_, linalg::Matrix(batch, hidden_));
  c_cache_.assign(seq_len_, linalg::Matrix(batch, hidden_));

  // Gate weights/biases are 1×hidden rows — hoist them (and each batch
  // row) to raw pointers once per loop instead of re-deriving addresses
  // through operator() per element.
  const double* wz = wz_.value.data();
  const double* wr = wr_.value.data();
  const double* wc = wc_.value.data();
  const double* bz = bz_.value.data();
  const double* br = br_.value.data();
  const double* bc = bc_.value.data();

  for (std::size_t t = 0; t < seq_len_; ++t) {
    const linalg::Matrix& h_prev = h_cache_[t];
    // Recurrent contributions: both gates consume the same h_prev, so one
    // batched call packs it once (bit-identical to two MatMul calls).
    linalg::Matrix hz(batch, hidden_);
    linalg::Matrix hr(batch, hidden_);
    const linalg::kernel::GemmBatchItem gate_items[2] = {
        {{h_prev.data(), hidden_, 1}, {uz_.value.data(), hidden_, 1}, hz.data()},
        {{h_prev.data(), hidden_, 1}, {ur_.value.data(), hidden_, 1}, hr.data()}};
    linalg::kernel::GemmBatch(batch, hidden_, hidden_, gate_items);
    // Fused gate pass: z, r, and the reset-gated state in one sweep.
    linalg::Matrix gated(batch, hidden_);
    for (std::size_t b = 0; b < batch; ++b) {
      const double xt = x(b, t);
      const double* hzrow = hz.row(b);
      const double* hrrow = hr.row(b);
      const double* hprow = h_prev.row(b);
      double* zrow = z_cache_[t].row(b);
      double* rrow = r_cache_[t].row(b);
      double* grow = gated.row(b);
      for (std::size_t j = 0; j < hidden_; ++j) {
        zrow[j] = SigmoidScalar(xt * wz[j] + hzrow[j] + bz[j]);
        rrow[j] = SigmoidScalar(xt * wr[j] + hrrow[j] + br[j]);
        grow[j] = rrow[j] * hprow[j];
      }
    }
    const linalg::Matrix hc = linalg::MatMul(gated, uc_.value);
    for (std::size_t b = 0; b < batch; ++b) {
      const double xt = x(b, t);
      const double* hcrow = hc.row(b);
      const double* hprow = h_prev.row(b);
      const double* zrow = z_cache_[t].row(b);
      double* crow = c_cache_[t].row(b);
      double* hnrow = h_cache_[t + 1].row(b);
      for (std::size_t j = 0; j < hidden_; ++j) {
        const double c = std::tanh(xt * wc[j] + hcrow[j] + bc[j]);
        crow[j] = c;
        const double z = zrow[j];
        hnrow[j] = (1.0 - z) * hprow[j] + z * c;
      }
    }
  }
  return h_cache_[seq_len_];
}

linalg::Matrix GruLayer::Backward(const linalg::Matrix& grad_output) {
  const std::size_t batch = x_cache_.rows();
  linalg::Matrix grad_x(batch, seq_len_);
  linalg::Matrix dh = grad_output;

  for (std::size_t t = seq_len_; t-- > 0;) {
    const linalg::Matrix& h_prev = h_cache_[t];
    const linalg::Matrix& z = z_cache_[t];
    const linalg::Matrix& r = r_cache_[t];
    const linalg::Matrix& c = c_cache_[t];

    // Fused: gate pre-activation gradients and the reset-gated state in
    // one sweep over each batch row.
    linalg::Matrix dz_pre(batch, hidden_);
    linalg::Matrix dc_pre(batch, hidden_);
    linalg::Matrix dh_prev(batch, hidden_);
    linalg::Matrix gated(batch, hidden_);
    for (std::size_t b = 0; b < batch; ++b) {
      const double* dhrow = dh.row(b);
      const double* zrow = z.row(b);
      const double* crow = c.row(b);
      const double* rrow = r.row(b);
      const double* hprow = h_prev.row(b);
      double* dzrow = dz_pre.row(b);
      double* dcrow = dc_pre.row(b);
      double* dhprow = dh_prev.row(b);
      double* grow = gated.row(b);
      for (std::size_t j = 0; j < hidden_; ++j) {
        const double g = dhrow[j];
        const double zj = zrow[j];
        const double cj = crow[j];
        dzrow[j] = g * (cj - hprow[j]) * zj * (1.0 - zj);
        dcrow[j] = g * zj * (1.0 - cj * cj);
        dhprow[j] = g * (1.0 - zj);
        // Candidate path: a_c = x*wc + (r .* h_prev) Uc + bc.
        grow[j] = rrow[j] * hprow[j];
      }
    }
    uc_.grad += linalg::MatTMul(gated, dc_pre);
    const linalg::Matrix dgated = linalg::MatMulT(dc_pre, uc_.value);
    linalg::Matrix dr_pre(batch, hidden_);
    for (std::size_t b = 0; b < batch; ++b) {
      const double* rrow = r.row(b);
      const double* hprow = h_prev.row(b);
      const double* dgrow = dgated.row(b);
      double* dhprow = dh_prev.row(b);
      double* drrow = dr_pre.row(b);
      for (std::size_t j = 0; j < hidden_; ++j) {
        const double rj = rrow[j];
        dhprow[j] += dgrow[j] * rj;
        drrow[j] = dgrow[j] * hprow[j] * rj * (1.0 - rj);
      }
    }
    // Gate paths through the recurrent weights: the z/r products share a
    // shape pairwise, so each pair runs as one batched call into
    // scratches, then accumulates — same per-element sums and the same
    // += order as the unbatched MatTMul/MatMulT calls this replaced.
    linalg::Matrix guz(hidden_, hidden_);
    linalg::Matrix gur(hidden_, hidden_);
    const linalg::kernel::GemmBatchItem ugrad_items[2] = {
        {{h_prev.data(), 1, hidden_}, {dz_pre.data(), hidden_, 1}, guz.data()},
        {{h_prev.data(), 1, hidden_}, {dr_pre.data(), hidden_, 1}, gur.data()}};
    linalg::kernel::GemmBatch(hidden_, hidden_, batch, ugrad_items);
    uz_.grad += guz;
    ur_.grad += gur;
    linalg::Matrix dgz(batch, hidden_);
    linalg::Matrix dgr(batch, hidden_);
    const linalg::kernel::GemmBatchItem hgrad_items[2] = {
        {{dz_pre.data(), hidden_, 1}, {uz_.value.data(), 1, hidden_}, dgz.data()},
        {{dr_pre.data(), hidden_, 1}, {ur_.value.data(), 1, hidden_}, dgr.data()}};
    linalg::kernel::GemmBatch(batch, hidden_, hidden_, hgrad_items);
    dh_prev += dgz;
    dh_prev += dgr;

    // Input weights, biases, and the scalar input gradient.
    double* wzg = wz_.grad.data();
    double* wrg = wr_.grad.data();
    double* wcg = wc_.grad.data();
    double* bzg = bz_.grad.data();
    double* brg = br_.grad.data();
    double* bcg = bc_.grad.data();
    const double* wzv = wz_.value.data();
    const double* wrv = wr_.value.data();
    const double* wcv = wc_.value.data();
    for (std::size_t b = 0; b < batch; ++b) {
      const double xt = x_cache_(b, t);
      const double* dzrow = dz_pre.row(b);
      const double* drrow = dr_pre.row(b);
      const double* dcrow = dc_pre.row(b);
      double gx = 0.0;
      for (std::size_t j = 0; j < hidden_; ++j) {
        wzg[j] += xt * dzrow[j];
        wrg[j] += xt * drrow[j];
        wcg[j] += xt * dcrow[j];
        bzg[j] += dzrow[j];
        brg[j] += drrow[j];
        bcg[j] += dcrow[j];
        gx += dzrow[j] * wzv[j] + drrow[j] * wrv[j] + dcrow[j] * wcv[j];
      }
      grad_x(b, t) = gx;
    }
    dh = std::move(dh_prev);
  }
  return grad_x;
}

void GruLayer::CollectParameters(std::vector<Parameter*>* out) {
  for (Parameter* p : {&wz_, &wr_, &wc_, &uz_, &ur_, &uc_, &bz_, &br_, &bc_}) {
    out->push_back(p);
  }
}

}  // namespace tfb::nn
