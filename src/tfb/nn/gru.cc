#include "tfb/nn/gru.h"

#include <cmath>

#include "tfb/base/check.h"

namespace tfb::nn {

namespace {

double SigmoidScalar(double x) { return 1.0 / (1.0 + std::exp(-x)); }

linalg::Matrix SmallInit(std::size_t rows, std::size_t cols, stats::Rng& rng,
                         double scale) {
  linalg::Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng.Gaussian(0.0, scale);
  }
  return m;
}

}  // namespace

GruLayer::GruLayer(std::size_t seq_len, std::size_t hidden, stats::Rng& rng)
    : seq_len_(seq_len),
      hidden_(hidden),
      wz_(SmallInit(1, hidden, rng, 0.3)),
      wr_(SmallInit(1, hidden, rng, 0.3)),
      wc_(SmallInit(1, hidden, rng, 0.3)),
      uz_(SmallInit(hidden, hidden, rng, 1.0 / std::sqrt(hidden))),
      ur_(SmallInit(hidden, hidden, rng, 1.0 / std::sqrt(hidden))),
      uc_(SmallInit(hidden, hidden, rng, 1.0 / std::sqrt(hidden))),
      bz_(linalg::Matrix(1, hidden)),
      br_(linalg::Matrix(1, hidden)),
      bc_(linalg::Matrix(1, hidden)) {}

linalg::Matrix GruLayer::Forward(const linalg::Matrix& x, bool) {
  TFB_CHECK(x.cols() == seq_len_);
  const std::size_t batch = x.rows();
  x_cache_ = x;
  h_cache_.assign(seq_len_ + 1, linalg::Matrix(batch, hidden_));
  z_cache_.assign(seq_len_, linalg::Matrix(batch, hidden_));
  r_cache_.assign(seq_len_, linalg::Matrix(batch, hidden_));
  c_cache_.assign(seq_len_, linalg::Matrix(batch, hidden_));

  for (std::size_t t = 0; t < seq_len_; ++t) {
    const linalg::Matrix& h_prev = h_cache_[t];
    // Recurrent contributions.
    const linalg::Matrix hz = linalg::MatMul(h_prev, uz_.value);
    const linalg::Matrix hr = linalg::MatMul(h_prev, ur_.value);
    for (std::size_t b = 0; b < batch; ++b) {
      const double xt = x(b, t);
      for (std::size_t j = 0; j < hidden_; ++j) {
        z_cache_[t](b, j) = SigmoidScalar(
            xt * wz_.value(0, j) + hz(b, j) + bz_.value(0, j));
        r_cache_[t](b, j) = SigmoidScalar(
            xt * wr_.value(0, j) + hr(b, j) + br_.value(0, j));
      }
    }
    // Candidate uses the reset-gated previous state.
    linalg::Matrix gated(batch, hidden_);
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t j = 0; j < hidden_; ++j) {
        gated(b, j) = r_cache_[t](b, j) * h_prev(b, j);
      }
    }
    const linalg::Matrix hc = linalg::MatMul(gated, uc_.value);
    for (std::size_t b = 0; b < batch; ++b) {
      const double xt = x(b, t);
      for (std::size_t j = 0; j < hidden_; ++j) {
        const double c = std::tanh(xt * wc_.value(0, j) + hc(b, j) +
                                   bc_.value(0, j));
        c_cache_[t](b, j) = c;
        const double z = z_cache_[t](b, j);
        h_cache_[t + 1](b, j) = (1.0 - z) * h_prev(b, j) + z * c;
      }
    }
  }
  return h_cache_[seq_len_];
}

linalg::Matrix GruLayer::Backward(const linalg::Matrix& grad_output) {
  const std::size_t batch = x_cache_.rows();
  linalg::Matrix grad_x(batch, seq_len_);
  linalg::Matrix dh = grad_output;

  for (std::size_t t = seq_len_; t-- > 0;) {
    const linalg::Matrix& h_prev = h_cache_[t];
    const linalg::Matrix& z = z_cache_[t];
    const linalg::Matrix& r = r_cache_[t];
    const linalg::Matrix& c = c_cache_[t];

    linalg::Matrix dz_pre(batch, hidden_);
    linalg::Matrix dc_pre(batch, hidden_);
    linalg::Matrix dh_prev(batch, hidden_);
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t j = 0; j < hidden_; ++j) {
        const double g = dh(b, j);
        const double zj = z(b, j);
        const double cj = c(b, j);
        dz_pre(b, j) = g * (cj - h_prev(b, j)) * zj * (1.0 - zj);
        dc_pre(b, j) = g * zj * (1.0 - cj * cj);
        dh_prev(b, j) = g * (1.0 - zj);
      }
    }
    // Candidate path: a_c = x*wc + (r .* h_prev) Uc + bc.
    linalg::Matrix gated(batch, hidden_);
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t j = 0; j < hidden_; ++j) {
        gated(b, j) = r(b, j) * h_prev(b, j);
      }
    }
    uc_.grad += linalg::MatTMul(gated, dc_pre);
    const linalg::Matrix dgated = linalg::MatMulT(dc_pre, uc_.value);
    linalg::Matrix dr_pre(batch, hidden_);
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t j = 0; j < hidden_; ++j) {
        const double rj = r(b, j);
        dh_prev(b, j) += dgated(b, j) * rj;
        dr_pre(b, j) = dgated(b, j) * h_prev(b, j) * rj * (1.0 - rj);
      }
    }
    // Gate paths through the recurrent weights.
    uz_.grad += linalg::MatTMul(h_prev, dz_pre);
    ur_.grad += linalg::MatTMul(h_prev, dr_pre);
    dh_prev += linalg::MatMulT(dz_pre, uz_.value);
    dh_prev += linalg::MatMulT(dr_pre, ur_.value);

    // Input weights, biases, and the scalar input gradient.
    for (std::size_t b = 0; b < batch; ++b) {
      const double xt = x_cache_(b, t);
      double gx = 0.0;
      for (std::size_t j = 0; j < hidden_; ++j) {
        wz_.grad(0, j) += xt * dz_pre(b, j);
        wr_.grad(0, j) += xt * dr_pre(b, j);
        wc_.grad(0, j) += xt * dc_pre(b, j);
        bz_.grad(0, j) += dz_pre(b, j);
        br_.grad(0, j) += dr_pre(b, j);
        bc_.grad(0, j) += dc_pre(b, j);
        gx += dz_pre(b, j) * wz_.value(0, j) +
              dr_pre(b, j) * wr_.value(0, j) +
              dc_pre(b, j) * wc_.value(0, j);
      }
      grad_x(b, t) = gx;
    }
    dh = std::move(dh_prev);
  }
  return grad_x;
}

void GruLayer::CollectParameters(std::vector<Parameter*>* out) {
  for (Parameter* p : {&wz_, &wr_, &wc_, &uz_, &ur_, &uc_, &bz_, &br_, &bc_}) {
    out->push_back(p);
  }
}

}  // namespace tfb::nn
