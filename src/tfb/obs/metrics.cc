#include "tfb/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>

#include "tfb/base/check.h"

namespace tfb::obs {

namespace {

std::atomic<bool> g_enabled{false};

// %.17g: values survive an export/parse round trip bit-exactly, matching
// the journal's convention.
std::string FormatDouble(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// Prometheus has no NaN-safe text form for bucket bounds; +inf spells "+Inf".
std::string FormatBound(double bound) {
  if (std::isinf(bound)) return "+Inf";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%g", bound);
  return buf;
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Splits an embedded-label name into (base, labels): "a{b=\"c\"}" ->
/// ("a", "{b=\"c\"}"). Histograms need this to splice `le` into the label
/// set of their *_bucket lines.
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
  } else {
    *base = name.substr(0, brace);
    *labels = name.substr(brace);
  }
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  TFB_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

void Histogram::Observe(double value) {
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::MergeBuckets(const std::vector<std::uint64_t>& bucket_deltas,
                             double sum_delta) {
  if (bucket_deltas.size() != buckets_.size()) return;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < bucket_deltas.size(); ++i) {
    buckets_[i].fetch_add(bucket_deltas[i], std::memory_order_relaxed);
    total += bucket_deltas[i];
  }
  count_.fetch_add(total, std::memory_order_relaxed);
  sum_.fetch_add(sum_delta, std::memory_order_relaxed);
}

double Histogram::Mean() const {
  const std::uint64_t n = Count();
  return n > 0 ? Sum() / static_cast<double>(n) : 0.0;
}

std::vector<std::uint64_t> Histogram::CumulativeCounts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    out[i] = running;
  }
  return out;
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Quantile(double q) const {
  const std::vector<std::uint64_t> cumulative = CumulativeCounts();
  const std::uint64_t n = cumulative.empty() ? 0 : cumulative.back();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(n);
  std::size_t i = 0;
  while (i < cumulative.size() &&
         static_cast<double>(cumulative[i]) < rank) {
    ++i;
  }
  if (i >= bounds_.size()) {
    // +inf bucket: no upper edge; report its lower bound.
    return bounds_.empty() ? 0.0 : bounds_.back();
  }
  const double upper = bounds_[i];
  const double lower = i > 0 ? bounds_[i - 1] : 0.0;
  const std::uint64_t below = i > 0 ? cumulative[i - 1] : 0;
  const std::uint64_t in_bucket = cumulative[i] - below;
  if (in_bucket == 0) return upper;
  const double fraction =
      (rank - static_cast<double>(below)) / static_cast<double>(in_bucket);
  return lower + std::clamp(fraction, 0.0, 1.0) * (upper - lower);
}

std::vector<double> ExponentialBounds(double first, double factor,
                                      std::size_t count) {
  TFB_CHECK(first > 0.0 && factor > 1.0);
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = first;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

Registry::Shard& Registry::ShardFor(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) % kShards];
}

Counter& Registry::GetCounter(const std::string& name) {
  Shard& shard = ShardFor(name);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  auto& slot = shard.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  Shard& shard = ShardFor(name);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  auto& slot = shard.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  const std::vector<double>& bounds) {
  Shard& shard = ShardFor(name);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  auto& slot = shard.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

std::string Registry::ToPrometheusText() const {
  // Snapshot under the shard locks into sorted maps so the exposition is
  // deterministic regardless of shard hashing.
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, const Histogram*> histograms;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [name, c] : shard.counters) counters[name] = c->Value();
    for (const auto& [name, g] : shard.gauges) gauges[name] = g->Value();
    for (const auto& [name, h] : shard.histograms) {
      histograms[name] = h.get();
    }
  }
  std::string out;
  for (const auto& [name, value] : counters) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    out += "# TYPE " + base + " counter\n";
    out += name + " " + FormatDouble(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    out += "# TYPE " + base + " gauge\n";
    out += name + " " + FormatDouble(value) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    // Merge `le` into any embedded label set: {a="b"} -> {a="b",le="x"}.
    const std::string label_prefix =
        labels.empty() ? "{" : labels.substr(0, labels.size() - 1) + ",";
    out += "# TYPE " + base + " histogram\n";
    const std::vector<std::uint64_t> cumulative = h->CumulativeCounts();
    for (std::size_t i = 0; i < cumulative.size(); ++i) {
      const double bound = i < h->bounds().size()
                               ? h->bounds()[i]
                               : std::numeric_limits<double>::infinity();
      out += base + "_bucket" + label_prefix + "le=\"" + FormatBound(bound) +
             "\"} " + std::to_string(cumulative[i]) + "\n";
    }
    out += base + "_sum" + labels + " " + FormatDouble(h->Sum()) + "\n";
    out += base + "_count" + labels + " " + std::to_string(h->Count()) + "\n";
  }
  return out;
}

std::string Registry::ToJson() const {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, const Histogram*> histograms;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [name, c] : shard.counters) counters[name] = c->Value();
    for (const auto& [name, g] : shard.gauges) gauges[name] = g->Value();
    for (const auto& [name, h] : shard.histograms) {
      histograms[name] = h.get();
    }
  }
  std::string out = "{";
  bool first = true;
  const auto append_scalar = [&](const std::string& name, const char* kind,
                                 double value) {
    if (!first) out += ",";
    first = false;
    AppendJsonEscaped(&out, name);
    out += ":{\"type\":\"";
    out += kind;
    out += "\",\"value\":" + FormatDouble(value) + "}";
  };
  for (const auto& [name, value] : counters) {
    append_scalar(name, "counter", value);
  }
  for (const auto& [name, value] : gauges) append_scalar(name, "gauge", value);
  for (const auto& [name, h] : histograms) {
    if (!first) out += ",";
    first = false;
    AppendJsonEscaped(&out, name);
    // Quantiles of an empty histogram are undefined; render null so a
    // dashboard cannot mistake "no data yet" for a measured 0.
    const bool empty = h->Count() == 0;
    const auto quantile = [&](double q) {
      return empty ? std::string("null") : FormatDouble(h->Quantile(q));
    };
    out += ":{\"type\":\"histogram\",\"count\":" + std::to_string(h->Count()) +
           ",\"sum\":" + FormatDouble(h->Sum()) +
           ",\"p50\":" + quantile(0.5) + ",\"p95\":" + quantile(0.95) +
           ",\"p99\":" + quantile(0.99) + ",\"buckets\":[";
    const std::vector<std::uint64_t> cumulative = h->CumulativeCounts();
    for (std::size_t i = 0; i < cumulative.size(); ++i) {
      if (i > 0) out += ",";
      const double bound = i < h->bounds().size()
                               ? h->bounds()[i]
                               : std::numeric_limits<double>::infinity();
      out += "{\"le\":";
      if (std::isinf(bound)) {
        out += "\"+Inf\"";
      } else {
        out += FormatDouble(bound);
      }
      out += ",\"count\":" + std::to_string(cumulative[i]) + "}";
    }
    out += "]}";
  }
  out += "}";
  return out;
}

Registry::Snapshot Registry::TakeSnapshot() const {
  Snapshot snap;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [name, c] : shard.counters) {
      snap.counters[name] = c->Value();
    }
    for (const auto& [name, g] : shard.gauges) snap.gauges[name] = g->Value();
    for (const auto& [name, h] : shard.histograms) {
      Snapshot::HistogramState& state = snap.histograms[name];
      state.bounds = h->bounds();
      state.buckets = h->BucketCounts();
      state.sum = h->Sum();
    }
  }
  return snap;
}

void Registry::Reset() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.counters.clear();
    shard.gauges.clear();
    shard.histograms.clear();
  }
}

Registry& DefaultRegistry() {
  static Registry* registry = new Registry();  // Leaked: outlives all users.
  return *registry;
}

bool WriteMetricsFile(const Registry& registry, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  os << (json ? registry.ToJson() : registry.ToPrometheusText());
  if (json) os << '\n';
  return static_cast<bool>(os);
}

}  // namespace tfb::obs
