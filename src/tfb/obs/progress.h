#ifndef TFB_OBS_PROGRESS_H_
#define TFB_OBS_PROGRESS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

/// \file
/// Live run progress: the BenchmarkRunner feeds this tracker one event per
/// task (started / finished), and the tracker derives completion counts, an
/// EWMA of inter-completion gaps, throughput, and an ETA. Two consumers:
///
///  - the terminal, via `--progress=auto|bar|plain|off` — a `\r`-refreshed
///    TTY bar, or plain heartbeat lines through the structured logger when
///    stderr is not a TTY (auto picks between them with isatty);
///  - the HTTP /status endpoint, via StatusJson() (see http_exporter.h).
///
/// ETA semantics: the tracker smooths the gap between consecutive task
/// *completions* (EWMA, alpha 0.3) and multiplies by the remaining task
/// count. Because completion gaps already reflect the worker-pool
/// parallelism, no thread-count correction is needed; the estimate adapts
/// within a few completions when task costs drift. eta_seconds is -1 until
/// the first completion of the active run (unknown), and 0 once done.

namespace tfb::obs {

/// How progress is rendered on the terminal.
enum class ProgressMode {
  kOff,    ///< No terminal rendering (tracker still feeds /status).
  kAuto,   ///< kBar when the stream is a TTY, else kPlain.
  kBar,    ///< Single self-erasing `\r` progress bar line.
  kPlain,  ///< Rate-limited heartbeat lines via the structured logger.
};

/// Parses "auto" | "bar" | "plain" | "off" (case-insensitive).
std::optional<ProgressMode> ParseProgressMode(const std::string& name);
const char* ProgressModeName(ProgressMode mode);

/// Per-method completion tally for the /status payload.
struct MethodTally {
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t fallback = 0;
};

/// Sharded-execution telemetry (fed by pipeline::ShardCoordinator, exposed
/// as the "shard" object of /status): worker liveness, shard progress, and
/// the fault-recovery counters — how many workers died, how many shards
/// were re-dispatched after a death, and how many poison tasks were
/// quarantined. `enabled` stays true after the run so a post-mortem scrape
/// still sees the final numbers.
struct ShardStats {
  bool enabled = false;
  std::string transport;            ///< "socketpair" | "tcp".
  std::size_t workers = 0;          ///< Configured worker-process count.
  std::size_t workers_live = 0;
  std::size_t workers_spawned = 0;  ///< Including respawns after deaths.
  std::size_t worker_deaths = 0;
  std::size_t shards_total = 0;
  std::size_t shards_completed = 0;
  std::size_t redispatches = 0;     ///< Shards re-queued after a death.
  std::size_t quarantined = 0;      ///< Poison tasks given CRASHED rows.

  // Transport health (see pipeline::ShardRunStats for semantics).
  std::size_t connections = 0;
  std::size_t reconnects = 0;
  std::size_t disconnects = 0;
  std::size_t fenced_completions = 0;
  std::size_t corrupt_frames = 0;

  /// One live, welcomed worker connection as the coordinator sees it:
  /// identity, the worker's latest self-reported usage (shipped in its
  /// telemetry batches), how long it has been silent, and the estimated
  /// clock offset used to align its spans. Rendered as the "fleet" array
  /// of the /status shard object.
  struct WorkerStatus {
    std::uint64_t pid = 0;
    std::uint64_t tasks_completed = 0;
    double cpu_seconds = 0.0;
    double peak_rss_mb = 0.0;
    double heartbeat_age_seconds = 0.0;
    double clock_offset_us = 0.0;
  };
  std::vector<WorkerStatus> fleet;
};

/// Serving-plane telemetry (fed by serve::ForecastService, exposed as the
/// "serve" object of /status): model registry occupancy plus the admission
/// and batching counters. Mirrors the ShardStats pattern above.
struct ServeStats {
  bool enabled = false;
  std::size_t models_registered = 0;
  std::size_t models_loaded = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;       ///< Requests answered 429.
  std::uint64_t batches = 0;
  std::size_t max_batch = 0;    ///< Largest coalesced batch so far.
  std::size_t queue_depth = 0;

  // End-to-end request latency quantiles in seconds (from the service's
  // tfb_serve_latency_seconds histogram); negative until the first
  // completed request, rendered as JSON null.
  double latency_p50 = -1.0;
  double latency_p95 = -1.0;
  double latency_p99 = -1.0;
};

/// Point-in-time view of the run, as exposed on /status.
struct ProgressSnapshot {
  bool active = false;          ///< Between BeginRun and EndRun.
  std::size_t total = 0;        ///< All tasks in the grid.
  std::size_t resumed = 0;      ///< Skipped via --resume journal replay.
  std::size_t completed = 0;    ///< Finished this run (ok or failed).
  std::size_t failed = 0;       ///< Completed with ok=false.
  std::size_t fallback = 0;     ///< Completed via the fallback forecaster.
  std::size_t in_flight = 0;    ///< Started but not yet finished.
  std::size_t queued = 0;       ///< Not yet started (total-resumed-done-run).
  double elapsed_seconds = 0.0;
  double ewma_task_seconds = 0.0;   ///< Smoothed per-task wall time.
  double tasks_per_second = 0.0;    ///< completed / elapsed.
  double eta_seconds = -1.0;        ///< -1 until estimable; 0 when done.
};

/// Thread-safe run-progress accumulator + optional terminal renderer.
/// All methods may be called concurrently from runner workers.
class ProgressTracker {
 public:
  ProgressTracker() = default;
  ProgressTracker(const ProgressTracker&) = delete;
  ProgressTracker& operator=(const ProgressTracker&) = delete;

  /// Chooses the terminal rendering. kAuto resolves against
  /// `isatty(fileno(stream))` at BeginRun time. `stream` is borrowed
  /// (stderr by default) and only used by kBar; kPlain goes through
  /// DefaultLogger(). Call before BeginRun.
  void SetDisplay(ProgressMode mode, std::FILE* stream = stderr);

  /// Starts a run of `total` tasks, `resumed` of which were replayed from
  /// the journal and will never produce Task* events. Resets all tallies.
  void BeginRun(std::size_t total, std::size_t resumed);

  void TaskStarted();
  /// `task_seconds` is the task's own wall time (used for the smoothed
  /// per-task duration; the ETA uses inter-completion gaps instead).
  void TaskFinished(const std::string& method, bool ok, bool used_fallback,
                    double task_seconds);
  /// A started task that will not finish on this executor (its worker
  /// process died mid-task): leaves in_flight without counting as a
  /// completion. The task re-enters via TaskStarted when re-dispatched.
  void TaskAbandoned();

  /// Finishes the run: erases the bar / emits the final heartbeat.
  void EndRun();

  ProgressSnapshot Snapshot() const;
  std::map<std::string, MethodTally> MethodTallies() const;

  /// Publishes sharded-execution state; StatusJson then carries a "shard"
  /// object. Survives EndRun (final numbers stay scrapeable) and is reset
  /// by the next BeginRun of a non-sharded run via SetShardStats({}).
  void SetShardStats(const ShardStats& stats);
  ShardStats GetShardStats() const;

  /// Publishes serving-plane state; StatusJson then carries a "serve"
  /// object. Same lifecycle as SetShardStats.
  void SetServeStats(const ServeStats& stats);
  ServeStats GetServeStats() const;

  /// The /status payload: one JSON object with the snapshot fields, the
  /// per-method tallies, and `run_id`.
  std::string StatusJson(const std::string& run_id) const;

 private:
  using Clock = std::chrono::steady_clock;

  ProgressSnapshot SnapshotLocked() const;  // Requires mutex_ held.
  void RenderLocked();                      // Requires mutex_ held.

  mutable std::mutex mutex_;
  ProgressMode mode_ = ProgressMode::kOff;  // Resolved (never kAuto) after
                                            // BeginRun.
  ProgressMode requested_mode_ = ProgressMode::kOff;
  std::FILE* stream_ = nullptr;  // Borrowed; bar sink.

  bool active_ = false;
  std::size_t total_ = 0;
  std::size_t resumed_ = 0;
  std::size_t completed_ = 0;
  std::size_t failed_ = 0;
  std::size_t fallback_ = 0;
  std::size_t in_flight_ = 0;
  double ewma_gap_seconds_ = 0.0;   // Smoothed inter-completion gap.
  double ewma_task_seconds_ = 0.0;  // Smoothed single-task duration.
  double final_elapsed_seconds_ = 0.0;  // Frozen at EndRun.
  // True while a bar line is on screen. The logger pre-text hook clears it
  // (and erases the line) without taking mutex_, so a log line never lands
  // mid-bar and the hook cannot deadlock against a rendering worker.
  std::atomic<bool> bar_visible_{false};
  Clock::time_point run_start_{};
  Clock::time_point last_finish_{};
  Clock::time_point last_render_{};
  std::map<std::string, MethodTally> by_method_;
  ShardStats shard_stats_;
  ServeStats serve_stats_;
};

/// The process-wide tracker shared by the runner, the terminal renderer,
/// and the HTTP exporter.
ProgressTracker& DefaultProgressTracker();

}  // namespace tfb::obs

#endif  // TFB_OBS_PROGRESS_H_
