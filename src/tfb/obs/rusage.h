#ifndef TFB_OBS_RUSAGE_H_
#define TFB_OBS_RUSAGE_H_

/// \file
/// Resource accounting on top of getrusage(2): where the CPU seconds and
/// the peak RSS of a run actually went. In-process tasks are measured as
/// RUSAGE_THREAD deltas around the evaluation (user/sys CPU only — RSS is
/// a process-wide high-water mark and cannot be attributed to one thread);
/// sandboxed tasks get exact per-child numbers, including peak RSS, via
/// the wait4(2) rusage the kernel keeps per process (see
/// proc::SandboxResult::usage). Both land on ResultRow and round-trip
/// through the JSONL journal.

namespace tfb::obs {

/// CPU and memory consumption of a process, thread, or interval.
struct ResourceUsage {
  double user_cpu_seconds = 0.0;
  double sys_cpu_seconds = 0.0;
  /// Peak resident set size in MiB; 0 when unknown (thread-scoped deltas,
  /// platforms without ru_maxrss).
  double max_rss_mb = 0.0;

  double total_cpu_seconds() const {
    return user_cpu_seconds + sys_cpu_seconds;
  }
};

/// Whole-process usage so far (RUSAGE_SELF).
ResourceUsage SelfUsage();

/// Calling thread's usage so far (RUSAGE_THREAD where available, else
/// RUSAGE_SELF — still monotone, so deltas stay non-negative).
ResourceUsage ThreadUsage();

/// CPU delta `end - begin` (clamped at zero); max_rss_mb is taken from
/// `end` only when `begin` had none, otherwise left 0 — a high-water mark
/// has no meaningful difference.
ResourceUsage UsageDelta(const ResourceUsage& begin, const ResourceUsage& end);

}  // namespace tfb::obs

#endif  // TFB_OBS_RUSAGE_H_
