#ifndef TFB_OBS_LOG_H_
#define TFB_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

/// \file
/// Structured, leveled logging (the live-telemetry counterpart of the
/// metrics/trace substrate — see the "Observability" section of DESIGN.md).
/// Every pipeline log line carries a level, a wall-clock timestamp, and
/// typed context fields (dataset, method, horizon, ...) instead of the
/// former free-form `fprintf(stderr, "[tfb] ...")` calls. Two sinks:
///
///  - text: one human-readable line per event on a FILE* (stderr by
///    default) — `[12:34:56.789 WARN ] cannot append journal path=run.jsonl`
///  - JSONL: one JSON object per event appended to a file
///    (`--log-json=FILE`, config key `log_json`), machine-readable for
///    post-hoc run forensics — `{"ts":"...","level":"warn","msg":...}`
///
/// Filtering is one relaxed atomic load; a suppressed line costs no
/// formatting, no locks, and no allocation, so DEBUG-level instrumentation
/// can stay in hot paths. Sinks are mutex-serialized: concurrent runner
/// workers never interleave partial lines. CLI: `--log-level=LEVEL`
/// (config key `log_level`).

namespace tfb::obs {

/// Severity, ordered; kOff filters everything.
enum class LogLevel : int {
  kTrace = 0,
  kDebug,
  kInfo,
  kWarn,
  kError,
  kOff,
};

/// Fixed-width upper-case label ("TRACE", "DEBUG", "INFO ", "WARN ",
/// "ERROR") for the text sink; "OFF" for kOff.
const char* LogLevelName(LogLevel level);

/// Parses "trace" | "debug" | "info" | "warn"/"warning" | "error" | "off"
/// (case-insensitive); nullopt for anything else.
std::optional<LogLevel> ParseLogLevel(const std::string& name);

/// One typed context field attached to a log event. Rendered `key=value`
/// in the text sink (quoted when the value contains spaces or quotes) and
/// as a top-level `"key":"value"` member in the JSONL sink — so keys should
/// not collide with the reserved `ts`/`level`/`msg`.
struct LogField {
  std::string key;
  std::string value;
};

/// The leveled, thread-safe logger. Cheap when filtered: `Log` below the
/// configured level is a single relaxed atomic load.
class Logger {
 public:
  Logger() = default;
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;
  ~Logger();

  /// Minimum level that gets emitted. Default kInfo.
  void SetLevel(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  bool ShouldLog(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  /// Text sink stream; stderr by default, nullptr disables text output.
  /// The stream is borrowed, never closed.
  void SetTextSink(std::FILE* sink);

  /// Opens (appends to) a JSONL sink at `path`; replaces any previous one.
  /// Returns false (and keeps the previous sink) when the file cannot be
  /// opened.
  bool OpenJsonlSink(const std::string& path);
  void CloseJsonlSink();

  /// A hook invoked (under the sink lock) immediately before a text line is
  /// written — the TTY progress bar registers one that erases itself so log
  /// lines and the bar share stderr without mangling each other. The hook
  /// must not call back into the logger.
  void SetPreTextHook(std::function<void()> hook);

  /// Emits one event to every active sink if `level` passes the filter.
  void Log(LogLevel level, std::string_view message,
           std::initializer_list<LogField> fields = {});

  void Trace(std::string_view message,
             std::initializer_list<LogField> fields = {}) {
    Log(LogLevel::kTrace, message, fields);
  }
  void Debug(std::string_view message,
             std::initializer_list<LogField> fields = {}) {
    Log(LogLevel::kDebug, message, fields);
  }
  void Info(std::string_view message,
            std::initializer_list<LogField> fields = {}) {
    Log(LogLevel::kInfo, message, fields);
  }
  void Warn(std::string_view message,
            std::initializer_list<LogField> fields = {}) {
    Log(LogLevel::kWarn, message, fields);
  }
  void Error(std::string_view message,
             std::initializer_list<LogField> fields = {}) {
    Log(LogLevel::kError, message, fields);
  }

  /// Events that passed the filter since construction (for tests).
  std::uint64_t lines_logged() const {
    return lines_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int> level_{static_cast<int>(LogLevel::kInfo)};
  std::atomic<std::uint64_t> lines_{0};
  mutable std::mutex mutex_;          // Serializes sink writes.
  std::FILE* text_sink_ = stderr;     // Borrowed; nullptr = disabled.
  std::FILE* jsonl_sink_ = nullptr;   // Owned; closed on replace/destroy.
  std::function<void()> pre_text_hook_;
};

/// The process-wide logger every pipeline call site writes to.
Logger& DefaultLogger();

/// JSON string escaping shared by the telemetry emitters (JSONL log lines,
/// the /status payload): appends `s` to `out` as a quoted JSON string,
/// escaping `"`/`\`, control characters, and common whitespace escapes.
/// Bytes >= 0x80 pass through untouched (UTF-8 stays UTF-8).
void AppendJsonString(std::string* out, std::string_view s);

}  // namespace tfb::obs

#endif  // TFB_OBS_LOG_H_
