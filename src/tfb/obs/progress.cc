#include "tfb/obs/progress.h"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cmath>

#include "tfb/obs/log.h"

namespace tfb::obs {

namespace {

// EWMA smoothing factor for completion gaps and task durations: heavy
// enough that the ETA settles within ~10 completions, light enough that a
// single outlier task does not whipsaw it.
constexpr double kEwmaAlpha = 0.3;

// Bar refresh rate limit; renders triggered faster than this are dropped.
constexpr auto kBarRefresh = std::chrono::milliseconds(100);
// Plain-mode heartbeat spacing.
constexpr auto kHeartbeat = std::chrono::seconds(2);

constexpr int kBarWidth = 30;

std::string Humanize(double seconds) {
  char buf[32];
  if (seconds < 0.0) return "?";
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.0fs", seconds);
  } else if (seconds < 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.0fm%02.0fs", std::floor(seconds / 60.0),
                  std::fmod(seconds, 60.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fh%02.0fm",
                  std::floor(seconds / 3600.0),
                  std::fmod(seconds, 3600.0) / 60.0);
  }
  return buf;
}

void AppendJsonNumber(std::string* out, double value) {
  char buf[48];
  if (std::isfinite(value)) {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
  } else {
    std::snprintf(buf, sizeof(buf), "null");
  }
  *out += buf;
}

}  // namespace

std::optional<ProgressMode> ParseProgressMode(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "off" || lower == "none") return ProgressMode::kOff;
  if (lower == "auto") return ProgressMode::kAuto;
  if (lower == "bar") return ProgressMode::kBar;
  if (lower == "plain") return ProgressMode::kPlain;
  return std::nullopt;
}

const char* ProgressModeName(ProgressMode mode) {
  switch (mode) {
    case ProgressMode::kOff: return "off";
    case ProgressMode::kAuto: return "auto";
    case ProgressMode::kBar: return "bar";
    case ProgressMode::kPlain: return "plain";
  }
  return "?";
}

void ProgressTracker::SetDisplay(ProgressMode mode, std::FILE* stream) {
  const std::lock_guard<std::mutex> lock(mutex_);
  requested_mode_ = mode;
  stream_ = stream;
}

void ProgressTracker::BeginRun(std::size_t total, std::size_t resumed) {
  const std::lock_guard<std::mutex> lock(mutex_);
  active_ = true;
  total_ = total;
  resumed_ = std::min(resumed, total);
  completed_ = failed_ = fallback_ = in_flight_ = 0;
  ewma_gap_seconds_ = ewma_task_seconds_ = 0.0;
  final_elapsed_seconds_ = 0.0;
  by_method_.clear();
  run_start_ = Clock::now();
  last_finish_ = run_start_;
  last_render_ = run_start_ - kHeartbeat;  // First render fires immediately.

  mode_ = requested_mode_;
  if (mode_ == ProgressMode::kAuto) {
    mode_ = (stream_ != nullptr && isatty(fileno(stream_)) != 0)
                ? ProgressMode::kBar
                : ProgressMode::kPlain;
  }
  if (mode_ == ProgressMode::kBar && stream_ == nullptr) {
    mode_ = ProgressMode::kPlain;
  }
  if (mode_ == ProgressMode::kBar) {
    // Let log lines erase the bar before printing, so the two can share
    // the terminal. The hook runs under the logger's sink lock and only
    // touches the atomic flag + the stream — never mutex_.
    DefaultLogger().SetPreTextHook([this] {
      if (bar_visible_.exchange(false, std::memory_order_acq_rel)) {
        std::fputs("\r\033[K", stream_);
      }
    });
  }
  RenderLocked();
}

void ProgressTracker::TaskStarted() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++in_flight_;
}

void ProgressTracker::TaskAbandoned() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (in_flight_ > 0) --in_flight_;
}

void ProgressTracker::TaskFinished(const std::string& method, bool ok,
                                   bool used_fallback, double task_seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (in_flight_ > 0) --in_flight_;
  const auto now = Clock::now();
  const double gap =
      std::chrono::duration<double>(now - last_finish_).count();
  last_finish_ = now;
  if (completed_ == 0) {
    ewma_gap_seconds_ = gap;
    ewma_task_seconds_ = task_seconds;
  } else {
    ewma_gap_seconds_ = kEwmaAlpha * gap + (1.0 - kEwmaAlpha) * ewma_gap_seconds_;
    ewma_task_seconds_ =
        kEwmaAlpha * task_seconds + (1.0 - kEwmaAlpha) * ewma_task_seconds_;
  }
  ++completed_;
  MethodTally& tally = by_method_[method];
  ++tally.completed;
  if (!ok) {
    ++failed_;
    ++tally.failed;
  }
  if (used_fallback) {
    ++fallback_;
    ++tally.fallback;
  }
  RenderLocked();
}

void ProgressTracker::EndRun() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!active_) return;
  final_elapsed_seconds_ =
      std::chrono::duration<double>(Clock::now() - run_start_).count();
  active_ = false;
  if (mode_ == ProgressMode::kBar) {
    DefaultLogger().SetPreTextHook(nullptr);
    if (bar_visible_.exchange(false, std::memory_order_acq_rel)) {
      std::fputs("\r\033[K", stream_);
      std::fflush(stream_);
    }
  }
  if (mode_ != ProgressMode::kOff) {
    const ProgressSnapshot s = SnapshotLocked();
    DefaultLogger().Info(
        "run finished",
        {{"completed", std::to_string(s.completed)},
         {"resumed", std::to_string(s.resumed)},
         {"failed", std::to_string(s.failed)},
         {"fallback", std::to_string(s.fallback)},
         {"elapsed", Humanize(s.elapsed_seconds)}});
  }
}

ProgressSnapshot ProgressTracker::SnapshotLocked() const {
  ProgressSnapshot s;
  s.active = active_;
  s.total = total_;
  s.resumed = resumed_;
  s.completed = completed_;
  s.failed = failed_;
  s.fallback = fallback_;
  s.in_flight = in_flight_;
  const std::size_t accounted = resumed_ + completed_ + in_flight_;
  s.queued = total_ > accounted ? total_ - accounted : 0;
  s.elapsed_seconds =
      active_ ? std::chrono::duration<double>(Clock::now() - run_start_).count()
              : final_elapsed_seconds_;
  s.ewma_task_seconds = ewma_task_seconds_;
  s.tasks_per_second =
      s.elapsed_seconds > 0.0
          ? static_cast<double>(completed_) / s.elapsed_seconds
          : 0.0;
  const std::size_t done = resumed_ + completed_;
  const std::size_t remaining = total_ > done ? total_ - done : 0;
  if (remaining == 0) {
    s.eta_seconds = 0.0;
  } else if (completed_ == 0) {
    s.eta_seconds = -1.0;  // No completions yet: unknown.
  } else {
    s.eta_seconds = ewma_gap_seconds_ * static_cast<double>(remaining);
  }
  return s;
}

ProgressSnapshot ProgressTracker::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return SnapshotLocked();
}

std::map<std::string, MethodTally> ProgressTracker::MethodTallies() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return by_method_;
}

void ProgressTracker::SetShardStats(const ShardStats& stats) {
  const std::lock_guard<std::mutex> lock(mutex_);
  shard_stats_ = stats;
}

ShardStats ProgressTracker::GetShardStats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return shard_stats_;
}

void ProgressTracker::SetServeStats(const ServeStats& stats) {
  const std::lock_guard<std::mutex> lock(mutex_);
  serve_stats_ = stats;
}

ServeStats ProgressTracker::GetServeStats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return serve_stats_;
}

void ProgressTracker::RenderLocked() {
  if (mode_ != ProgressMode::kBar && mode_ != ProgressMode::kPlain) return;
  const auto now = Clock::now();
  const auto spacing =
      mode_ == ProgressMode::kBar
          ? std::chrono::duration_cast<Clock::duration>(kBarRefresh)
          : std::chrono::duration_cast<Clock::duration>(kHeartbeat);
  const std::size_t done = resumed_ + completed_;
  const bool final_task = active_ && done >= total_;
  if (!final_task && now - last_render_ < spacing) return;
  last_render_ = now;

  const ProgressSnapshot s = SnapshotLocked();
  if (mode_ == ProgressMode::kPlain) {
    DefaultLogger().Info(
        "progress",
        {{"done", std::to_string(done) + "/" + std::to_string(s.total)},
         {"failed", std::to_string(s.failed)},
         {"in_flight", std::to_string(s.in_flight)},
         {"tasks_per_sec",
          [&] {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.2f", s.tasks_per_second);
            return std::string(buf);
          }()},
         {"eta", Humanize(s.eta_seconds)}});
    return;
  }

  // Bar: "[=========>           ]  12/64  18%  1.2 t/s  eta 45s  fail 2"
  const double frac =
      s.total > 0 ? static_cast<double>(done) / static_cast<double>(s.total)
                  : 0.0;
  const int fill = static_cast<int>(frac * kBarWidth);
  std::string line = "\r\033[K[";
  for (int i = 0; i < kBarWidth; ++i) {
    line += i < fill ? '=' : (i == fill ? '>' : ' ');
  }
  char tail[128];
  std::snprintf(tail, sizeof(tail), "] %zu/%zu %3.0f%% %.1f t/s eta %s", done,
                s.total, frac * 100.0, s.tasks_per_second,
                Humanize(s.eta_seconds).c_str());
  line += tail;
  if (s.failed > 0) {
    std::snprintf(tail, sizeof(tail), " fail %zu", s.failed);
    line += tail;
  }
  std::fwrite(line.data(), 1, line.size(), stream_);
  std::fflush(stream_);
  bar_visible_.store(true, std::memory_order_release);
}

std::string ProgressTracker::StatusJson(const std::string& run_id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const ProgressSnapshot s = SnapshotLocked();
  std::string out = "{\"run_id\":";
  AppendJsonString(&out, run_id);
  out += ",\"active\":";
  out += s.active ? "true" : "false";
  out += ",\"total\":" + std::to_string(s.total);
  out += ",\"resumed\":" + std::to_string(s.resumed);
  out += ",\"completed\":" + std::to_string(s.completed);
  out += ",\"failed\":" + std::to_string(s.failed);
  out += ",\"fallback\":" + std::to_string(s.fallback);
  out += ",\"in_flight\":" + std::to_string(s.in_flight);
  out += ",\"queued\":" + std::to_string(s.queued);
  out += ",\"elapsed_seconds\":";
  AppendJsonNumber(&out, s.elapsed_seconds);
  out += ",\"ewma_task_seconds\":";
  AppendJsonNumber(&out, s.ewma_task_seconds);
  out += ",\"tasks_per_second\":";
  AppendJsonNumber(&out, s.tasks_per_second);
  out += ",\"eta_seconds\":";
  AppendJsonNumber(&out, s.eta_seconds);
  out += ",\"methods\":{";
  bool first = true;
  for (const auto& [method, tally] : by_method_) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(&out, method);
    out += ":{\"completed\":" + std::to_string(tally.completed);
    out += ",\"failed\":" + std::to_string(tally.failed);
    out += ",\"fallback\":" + std::to_string(tally.fallback);
    out += '}';
  }
  out += '}';
  if (shard_stats_.enabled) {
    const ShardStats& sh = shard_stats_;
    out += ",\"shard\":{";
    out += "\"transport\":";
    AppendJsonString(&out, sh.transport.empty() ? "socketpair" : sh.transport);
    out += ",\"workers\":" + std::to_string(sh.workers);
    out += ",\"workers_live\":" + std::to_string(sh.workers_live);
    out += ",\"workers_spawned\":" + std::to_string(sh.workers_spawned);
    out += ",\"worker_deaths\":" + std::to_string(sh.worker_deaths);
    out += ",\"shards_total\":" + std::to_string(sh.shards_total);
    out += ",\"shards_completed\":" + std::to_string(sh.shards_completed);
    out += ",\"redispatches\":" + std::to_string(sh.redispatches);
    out += ",\"quarantined\":" + std::to_string(sh.quarantined);
    out += ",\"connections\":" + std::to_string(sh.connections);
    out += ",\"reconnects\":" + std::to_string(sh.reconnects);
    out += ",\"disconnects\":" + std::to_string(sh.disconnects);
    out += ",\"fenced_completions\":" + std::to_string(sh.fenced_completions);
    out += ",\"corrupt_frames\":" + std::to_string(sh.corrupt_frames);
    if (!sh.fleet.empty()) {
      out += ",\"fleet\":[";
      bool first_worker = true;
      for (const ShardStats::WorkerStatus& w : sh.fleet) {
        if (!first_worker) out += ',';
        first_worker = false;
        out += "{\"pid\":" + std::to_string(w.pid);
        out += ",\"tasks_completed\":" + std::to_string(w.tasks_completed);
        out += ",\"cpu_seconds\":";
        AppendJsonNumber(&out, w.cpu_seconds);
        out += ",\"peak_rss_mb\":";
        AppendJsonNumber(&out, w.peak_rss_mb);
        out += ",\"heartbeat_age_seconds\":";
        AppendJsonNumber(&out, w.heartbeat_age_seconds);
        out += ",\"clock_offset_us\":";
        AppendJsonNumber(&out, w.clock_offset_us);
        out += '}';
      }
      out += ']';
    }
    out += '}';
  }
  if (serve_stats_.enabled) {
    const ServeStats& sv = serve_stats_;
    out += ",\"serve\":{";
    out += "\"models_registered\":" + std::to_string(sv.models_registered);
    out += ",\"models_loaded\":" + std::to_string(sv.models_loaded);
    out += ",\"admitted\":" + std::to_string(sv.admitted);
    out += ",\"completed\":" + std::to_string(sv.completed);
    out += ",\"failed\":" + std::to_string(sv.failed);
    out += ",\"shed\":" + std::to_string(sv.shed);
    out += ",\"batches\":" + std::to_string(sv.batches);
    out += ",\"max_batch\":" + std::to_string(sv.max_batch);
    out += ",\"queue_depth\":" + std::to_string(sv.queue_depth);
    const auto quantile = [&](double value) {
      if (value < 0.0) {
        out += "null";  // No completed requests yet.
      } else {
        AppendJsonNumber(&out, value);
      }
    };
    out += ",\"latency\":{\"p50\":";
    quantile(sv.latency_p50);
    out += ",\"p95\":";
    quantile(sv.latency_p95);
    out += ",\"p99\":";
    quantile(sv.latency_p99);
    out += '}';
    out += '}';
  }
  out += '}';
  return out;
}

ProgressTracker& DefaultProgressTracker() {
  static ProgressTracker* tracker = new ProgressTracker();
  return *tracker;
}

}  // namespace tfb::obs
