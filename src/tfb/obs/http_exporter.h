#ifndef TFB_OBS_HTTP_EXPORTER_H_
#define TFB_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "tfb/base/status.h"
#include "tfb/obs/metrics.h"
#include "tfb/obs/progress.h"

/// \file
/// Embedded HTTP exporter (`tfb_run --serve=PORT`, config key `serve`): a
/// single poll()-based server thread that makes a live run scrapeable by
/// curl or Prometheus while it executes. Routes:
///
///   GET /metrics  Prometheus text exposition of the metrics Registry
///   GET /status   JSON run progress: run id, task counts, per-method
///                 tallies, queue depth, throughput, ETA
///                 (ProgressTracker::StatusJson)
///   GET /healthz  "ok\n" — liveness probe
///
/// The server handles one connection at a time (scrape traffic is one
/// Prometheus poll every few seconds; serialization keeps it ~150 lines and
/// dependency-free) and never touches the pipeline: handlers only *read*
/// the registry and the tracker, so scrapes cannot perturb results — the
/// determinism test runs with a live scraper to prove it.

namespace tfb::obs {

struct HttpExporterOptions {
  /// Interface to bind; loopback by default (telemetry is not
  /// authenticated — bind 0.0.0.0 only on trusted networks).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (see HttpExporter::port()).
  std::uint16_t port = 0;
  /// Sources; default to the process-wide singletons when null.
  const Registry* registry = nullptr;
  const ProgressTracker* progress = nullptr;
  /// Opaque run identifier echoed in /status.
  std::string run_id;
};

/// The embedded server. Start() binds + spawns the serving thread; Stop()
/// (or destruction) wakes it via a self-pipe and joins it.
class HttpExporter {
 public:
  HttpExporter() = default;
  explicit HttpExporter(HttpExporterOptions options)
      : options_(std::move(options)) {}
  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;
  ~HttpExporter();

  /// Binds, listens, and starts serving. Fails (kInternal) when the
  /// address cannot be bound or the exporter is already serving.
  base::Status Start();

  /// Stops serving and joins the server thread. Idempotent.
  void Stop();

  bool serving() const { return serving_.load(std::memory_order_acquire); }
  /// The bound port (the actual one when options.port was 0); 0 before
  /// Start().
  std::uint16_t port() const { return port_; }
  /// Requests answered since Start (any route, including 404s).
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();
  void Handle(int client_fd);

  HttpExporterOptions options_;
  std::thread thread_;
  std::atomic<bool> serving_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // Self-pipe: Stop() writes, Serve() wakes.
};

/// Minimal blocking HTTP/1.0 GET against 127.0.0.1:`port` — the test and
/// bench scrape client. Returns false on connect/read failure or non-2xx;
/// on success fills `*body` with the response body (headers stripped).
bool HttpGet(std::uint16_t port, const std::string& path, std::string* body);

}  // namespace tfb::obs

#endif  // TFB_OBS_HTTP_EXPORTER_H_
