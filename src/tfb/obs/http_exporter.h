#ifndef TFB_OBS_HTTP_EXPORTER_H_
#define TFB_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "tfb/base/status.h"
#include "tfb/obs/metrics.h"
#include "tfb/obs/progress.h"

/// \file
/// Embedded HTTP server (`tfb_run --serve=PORT`, `tfb_serve`): one
/// epoll-driven event-loop thread multiplexing every connection through
/// non-blocking sockets, so thousands of concurrent clients (a scrape burst,
/// or the serving plane's forecast traffic) share one thread without a
/// descriptor-per-thread explosion. Built-in routes:
///
///   GET /metrics  Prometheus text exposition of the metrics Registry
///   GET /status   JSON run progress (ProgressTracker::StatusJson)
///   GET /healthz  "ok\n" — liveness probe
///
/// Additional routes are registered with AddRoute before Start. Handlers
/// receive the parsed request plus a *responder* callback and may complete
/// it from any thread at any later time — the event loop parks the
/// connection until the responder fires (or the handler deadline passes,
/// which produces a 504). This is what lets the serve::ForecastService
/// coalesce concurrent POST /forecast requests into batches without ever
/// blocking the I/O thread.
///
/// Protocol hygiene: unknown paths get 404; known paths with an
/// unregistered method get 405 plus an `Allow` header; request lines /
/// headers beyond `max_header_bytes` get 431; bodies beyond
/// `max_body_bytes` get 413; malformed request lines get 400. Responses are
/// HTTP/1.0 with `Connection: close`.

namespace tfb::obs {

/// A parsed inbound request. `path` has the query string stripped;
/// `headers` holds the header block as name/value pairs in arrival order
/// (names keep their wire casing — look up with FindHeader).
struct HttpRequest {
  std::string method;
  std::string path;
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Case-insensitive header lookup (header names are case-insensitive per
/// RFC 9110); returns the first match's value, or nullptr when absent.
const std::string* FindHeader(const HttpRequest& request,
                              const std::string& name);

/// An outbound response; `headers` are extra headers beyond Content-Type /
/// Content-Length / Connection (e.g. Retry-After on a 429).
struct HttpResponse {
  int code = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Completes a parked request. Thread-safe, may be invoked once from any
/// thread; invocations after Stop() or after the client disconnected are
/// silently dropped.
using HttpResponder = std::function<void(HttpResponse)>;

/// A route handler. Runs on the event-loop thread: either respond inline
/// (cheap snapshot routes) or stash the responder and return immediately
/// (queued work); never block in the handler body.
using HttpHandler = std::function<void(const HttpRequest&, HttpResponder)>;

struct HttpExporterOptions {
  /// Interface to bind; loopback by default (telemetry is not
  /// authenticated — bind 0.0.0.0 only on trusted networks).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (see HttpExporter::port()).
  std::uint16_t port = 0;
  /// Sources; default to the process-wide singletons when null.
  const Registry* registry = nullptr;
  const ProgressTracker* progress = nullptr;
  /// Opaque run identifier echoed in /status.
  std::string run_id;
  /// Concurrent-connection cap; connections beyond it are shed with an
  /// immediate best-effort 503 and closed.
  std::size_t max_connections = 4096;
  /// Request-line + header budget; overflow answers 431.
  std::size_t max_header_bytes = 16 * 1024;
  /// Body budget (Content-Length); overflow answers 413.
  std::size_t max_body_bytes = 8 * 1024 * 1024;
  /// A connection idle (no bytes moved) this long is dropped — slow or
  /// stalled clients must not pin connection slots.
  int idle_timeout_ms = 10'000;
  /// A dispatched request whose responder has not fired within this budget
  /// answers 504 — a wedged handler must not leak connections.
  int handler_timeout_ms = 30'000;
};

/// The embedded server. Start() binds + spawns the event-loop thread;
/// Stop() (or destruction) wakes it via a self-pipe and joins it.
class HttpExporter {
 public:
  HttpExporter();
  explicit HttpExporter(HttpExporterOptions options);
  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;
  ~HttpExporter();

  /// Registers `handler` for (method, path). Call before Start(); the
  /// route table is frozen while serving. Registering the same
  /// (method, path) twice replaces the handler.
  void AddRoute(const std::string& method, const std::string& path,
                HttpHandler handler);

  /// Binds, listens, and starts serving. Fails (kInternal) when the
  /// address cannot be bound or the exporter is already serving.
  base::Status Start();

  /// Stops serving and joins the event-loop thread. Parked responders held
  /// by handlers become no-ops. Idempotent.
  void Stop();

  bool serving() const { return serving_.load(std::memory_order_acquire); }
  /// The bound port (the actual one when options.port was 0); 0 before
  /// Start().
  std::uint16_t port() const { return port_; }
  /// Requests answered since Start (any route and status, including 404s).
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn;
  struct CompletionCore;

  void Serve();
  void AcceptPending();
  void HandleReadable(int fd);
  void HandleWritable(int fd);
  void TryDispatch(int fd);
  void DrainCompletions();
  void QueueResponse(int fd, const HttpResponse& response);
  void CloseConn(int fd);
  void SweepIdle();

  HttpExporterOptions options_;
  std::map<std::string, std::map<std::string, HttpHandler>> routes_;
  std::thread thread_;
  std::atomic<bool> serving_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // Self-pipe: Stop()/responders write.
  std::shared_ptr<CompletionCore> completions_;
  std::map<int, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_gen_ = 1;
};

/// Minimal blocking HTTP/1.0 client against 127.0.0.1:`port` — the test,
/// bench, and CI scrape/load client. Sends `method` with `body` (empty for
/// GET), reads the full response with a recv deadline and a partial-read
/// loop (a stalled server fails the call after `timeout_ms` instead of
/// hanging), and returns false on connect/IO/parse failure. On success
/// fills `*status_code` and `*response_body` (either may be null).
bool HttpCall(std::uint16_t port, const std::string& method,
              const std::string& path, const std::string& body,
              int* status_code, std::string* response_body,
              int timeout_ms = 2000);

/// GET sugar over HttpCall. Returns false on failure or non-2xx; on
/// success fills `*body` with the response body (headers stripped).
bool HttpGet(std::uint16_t port, const std::string& path, std::string* body,
             int timeout_ms = 2000);

/// POST sugar over HttpCall: sends `request_body` as application/json.
/// Returns false on transport failure; HTTP status lands in *status_code.
bool HttpPost(std::uint16_t port, const std::string& path,
              const std::string& request_body, int* status_code,
              std::string* response_body, int timeout_ms = 2000);

}  // namespace tfb::obs

#endif  // TFB_OBS_HTTP_EXPORTER_H_
