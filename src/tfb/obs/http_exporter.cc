#include "tfb/obs/http_exporter.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>

#include "tfb/obs/log.h"

namespace tfb::obs {

namespace {

using Clock = std::chrono::steady_clock;

void CloseIfOpen(int* fd) {
  if (*fd >= 0) close(*fd);
  *fd = -1;
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

const char* ReasonPhrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Error";
  }
}

/// Serializes a response as HTTP/1.0 wire bytes. Connection: close always —
/// one request per connection keeps the state machine two-phase.
std::string RenderResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.0 ";
  out += std::to_string(response.code);
  out += ' ';
  out += ReasonPhrase(response.code);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  for (const auto& [key, value] : response.headers) {
    out += "\r\n";
    out += key;
    out += ": ";
    out += value;
  }
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

HttpResponse SimpleResponse(int code, std::string body) {
  HttpResponse resp;
  resp.code = code;
  resp.body = std::move(body);
  return resp;
}

/// Case-insensitive Content-Length lookup in the raw header block.
/// Returns false when absent; `*length` is the parsed value.
bool FindContentLength(const std::string& headers, std::size_t* length) {
  std::size_t pos = 0;
  while (pos < headers.size()) {
    std::size_t eol = headers.find("\r\n", pos);
    if (eol == std::string::npos) eol = headers.size();
    const std::size_t colon = headers.find(':', pos);
    if (colon != std::string::npos && colon < eol) {
      std::string key = headers.substr(pos, colon - pos);
      std::transform(key.begin(), key.end(), key.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (key == "content-length") {
        std::size_t value_begin = colon + 1;
        while (value_begin < eol && headers[value_begin] == ' ') ++value_begin;
        std::size_t parsed = 0;
        for (std::size_t i = value_begin; i < eol; ++i) {
          const char c = headers[i];
          if (c < '0' || c > '9') return false;
          if (parsed > (SIZE_MAX - 9) / 10) return false;
          parsed = parsed * 10 + static_cast<std::size_t>(c - '0');
        }
        *length = parsed;
        return true;
      }
    }
    pos = eol + 2;
    if (eol == headers.size()) break;
  }
  return false;
}

}  // namespace

const std::string* FindHeader(const HttpRequest& request,
                              const std::string& name) {
  for (const auto& [key, value] : request.headers) {
    if (key.size() != name.size()) continue;
    bool match = true;
    for (std::size_t i = 0; i < key.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(key[i])) !=
          std::tolower(static_cast<unsigned char>(name[i]))) {
        match = false;
        break;
      }
    }
    if (match) return &value;
  }
  return nullptr;
}

/// Per-connection state machine. A connection is in exactly one of three
/// phases: accumulating request bytes, parked while a handler owns the
/// responder, or draining the rendered response.
struct HttpExporter::Conn {
  enum class State { kReading, kDispatched, kWriting };

  int fd = -1;
  std::uint64_t gen = 0;  // Guards completions against fd reuse.
  State state = State::kReading;
  std::string in;
  std::string out;
  std::size_t out_pos = 0;
  std::size_t header_end = 0;  // Offset just past "\r\n\r\n" once parsed.
  std::size_t content_length = 0;
  bool have_header = false;
  HttpRequest request;
  Clock::time_point last_activity;
  Clock::time_point dispatch_time;
};

/// Shared rendezvous between handler threads and the event loop. Responders
/// hold it by shared_ptr, so one firing after Stop() (or after the client
/// hung up) finds `alive == false` / a stale generation and drops the
/// response instead of touching freed state or a recycled descriptor.
struct HttpExporter::CompletionCore {
  struct Completion {
    int fd = -1;
    std::uint64_t gen = 0;
    HttpResponse response;
  };

  std::mutex mu;
  bool alive = true;
  int wake_fd = -1;
  std::vector<Completion> ready;
};

// Out of line so std::unique_ptr<Conn> is destroyed where Conn is complete.
HttpExporter::HttpExporter() = default;

HttpExporter::HttpExporter(HttpExporterOptions options)
    : options_(std::move(options)) {}

HttpExporter::~HttpExporter() { Stop(); }

void HttpExporter::AddRoute(const std::string& method, const std::string& path,
                            HttpHandler handler) {
  routes_[path][method] = std::move(handler);
}

base::Status HttpExporter::Start() {
  if (serving_.load(std::memory_order_acquire)) {
    return base::Status::Internal("http exporter already serving");
  }
  if (options_.registry == nullptr) options_.registry = &DefaultRegistry();
  if (options_.progress == nullptr) {
    options_.progress = &DefaultProgressTracker();
  }

  // Built-in telemetry routes; user-registered handlers for the same
  // (method, path) win because emplace keeps the existing entry.
  routes_["/healthz"].emplace("GET", [](const HttpRequest&, HttpResponder respond) {
    HttpResponse resp;
    resp.body = "ok\n";
    respond(std::move(resp));
  });
  routes_["/metrics"].emplace("GET", [this](const HttpRequest&,
                                            HttpResponder respond) {
    HttpResponse resp;
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = options_.registry->ToPrometheusText();
    respond(std::move(resp));
  });
  routes_["/status"].emplace("GET", [this](const HttpRequest&,
                                           HttpResponder respond) {
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = options_.progress->StatusJson(options_.run_id);
    resp.body += '\n';
    respond(std::move(resp));
  });

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return base::Status::Internal(std::string("socket: ") +
                                  std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    CloseIfOpen(&listen_fd_);
    return base::Status::InvalidInput("bad bind address: " +
                                      options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    CloseIfOpen(&listen_fd_);
    return base::Status::Internal("bind " + options_.bind_address + ":" +
                                  std::to_string(options_.port) + ": " + err);
  }
  // Full system backlog: a scrape burst or a load-test ramp must queue,
  // not get connection-refused.
  if (listen(listen_fd_, SOMAXCONN) != 0) {
    const std::string err = std::strerror(errno);
    CloseIfOpen(&listen_fd_);
    return base::Status::Internal("listen: " + err);
  }
  // Recover the actual port when an ephemeral one (port 0) was requested.
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  if (!SetNonBlocking(listen_fd_)) {
    const std::string err = std::strerror(errno);
    CloseIfOpen(&listen_fd_);
    return base::Status::Internal("fcntl O_NONBLOCK: " + err);
  }
  if (pipe(wake_fds_) != 0) {
    const std::string err = std::strerror(errno);
    CloseIfOpen(&listen_fd_);
    return base::Status::Internal("pipe: " + err);
  }
  SetNonBlocking(wake_fds_[0]);
  SetNonBlocking(wake_fds_[1]);

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    const std::string err = std::strerror(errno);
    CloseIfOpen(&listen_fd_);
    CloseIfOpen(&wake_fds_[0]);
    CloseIfOpen(&wake_fds_[1]);
    return base::Status::Internal("epoll_create1: " + err);
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fds_[0];
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fds_[0], &ev);

  completions_ = std::make_shared<CompletionCore>();
  completions_->wake_fd = wake_fds_[1];

  serving_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  std::string route_list;
  for (const auto& [path, methods] : routes_) {
    if (!route_list.empty()) route_list += ' ';
    route_list += path;
  }
  DefaultLogger().Info("http endpoint up", {{"addr", options_.bind_address},
                                            {"port", std::to_string(port_)},
                                            {"routes", route_list}});
  return base::Status::Ok();
}

void HttpExporter::Stop() {
  if (!serving_.exchange(false, std::memory_order_acq_rel)) return;
  // Wake the epoll_wait in Serve(); the byte's value is irrelevant.
  const char wake = 'x';
  [[maybe_unused]] const ssize_t n = write(wake_fds_[1], &wake, 1);
  if (thread_.joinable()) thread_.join();
  // Detach outstanding responders *before* closing the wake pipe so a late
  // completion never writes into a recycled descriptor.
  if (completions_ != nullptr) {
    std::lock_guard<std::mutex> lock(completions_->mu);
    completions_->alive = false;
    completions_->wake_fd = -1;
    completions_->ready.clear();
  }
  for (auto& [fd, conn] : conns_) close(fd);
  conns_.clear();
  CloseIfOpen(&epoll_fd_);
  CloseIfOpen(&listen_fd_);
  CloseIfOpen(&wake_fds_[0]);
  CloseIfOpen(&wake_fds_[1]);
  port_ = 0;
}

void HttpExporter::Serve() {
  // The tick bounds how late idle sweeps and handler deadlines fire.
  constexpr int kTickMs = 100;
  epoll_event events[128];
  while (serving_.load(std::memory_order_acquire)) {
    const int ready =
        epoll_wait(epoll_fd_, events, 128, kTickMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t mask = events[i].events;
      if (fd == wake_fds_[0]) {
        char buf[256];
        while (read(wake_fds_[0], buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        AcceptPending();
        continue;
      }
      if (conns_.find(fd) == conns_.end()) continue;  // Closed this pass.
      if ((mask & (EPOLLERR | EPOLLHUP)) != 0) {
        CloseConn(fd);
        continue;
      }
      if ((mask & EPOLLIN) != 0) HandleReadable(fd);
      if (conns_.find(fd) != conns_.end() && (mask & EPOLLOUT) != 0) {
        HandleWritable(fd);
      }
    }
    DrainCompletions();
    SweepIdle();
  }
}

void HttpExporter::AcceptPending() {
  while (true) {
    const int client = accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      // Out of descriptors (the process's own fds + a connection burst):
      // transient — back off briefly so pending connections drain as fds
      // free up, instead of spinning on a hot accept-fail loop.
      if (errno == EMFILE || errno == ENFILE) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      return;
    }
    if (conns_.size() >= options_.max_connections) {
      // Connection-slot exhaustion: shed with a best-effort 503 instead of
      // letting the kernel queue grow unboundedly.
      static const std::string kShed =
          RenderResponse(SimpleResponse(503, "connection limit reached\n"));
      [[maybe_unused]] const ssize_t n =
          send(client, kShed.data(), kShed.size(), MSG_NOSIGNAL);
      close(client);
      continue;
    }
    if (!SetNonBlocking(client)) {
      close(client);
      continue;
    }
    const int one = 1;
    setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->fd = client;
    conn->gen = next_gen_++;
    conn->last_activity = Clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = client;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, client, &ev) != 0) {
      close(client);
      continue;
    }
    conns_[client] = std::move(conn);
  }
}

void HttpExporter::HandleReadable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  char buf[8192];
  while (true) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(fd);
      return;
    }
    if (n == 0) {
      // Peer closed. Mid-request: the request can never complete. Parked or
      // writing: the response has nowhere to go. Either way, drop the slot;
      // a late responder is absorbed by the generation check.
      CloseConn(fd);
      return;
    }
    conn.in.append(buf, static_cast<std::size_t>(n));
    conn.last_activity = Clock::now();
    // Backstop on total accumulation regardless of parse state.
    if (conn.in.size() >
        options_.max_header_bytes + options_.max_body_bytes + 4096) {
      CloseConn(fd);
      return;
    }
  }
  if (conn.state == Conn::State::kReading) TryDispatch(fd);
}

void HttpExporter::TryDispatch(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;

  if (!conn.have_header) {
    const std::size_t mark = conn.in.find("\r\n\r\n");
    if (mark == std::string::npos) {
      if (conn.in.size() > options_.max_header_bytes) {
        QueueResponse(fd, SimpleResponse(431, "headers too large\n"));
      }
      return;
    }
    if (mark + 4 > options_.max_header_bytes) {
      QueueResponse(fd, SimpleResponse(431, "headers too large\n"));
      return;
    }
    conn.header_end = mark + 4;
    conn.have_header = true;

    // Request line: "GET /status HTTP/1.1".
    const std::size_t line_end = conn.in.find("\r\n");
    const std::string line = conn.in.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos || sp1 == 0 ||
        line[sp1 + 1] != '/') {
      QueueResponse(fd, SimpleResponse(400, "malformed request line\n"));
      return;
    }
    conn.request.method = line.substr(0, sp1);
    conn.request.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (const std::size_t q = conn.request.path.find('?');
        q != std::string::npos) {
      conn.request.path.resize(q);  // Ignore query strings.
    }

    const std::string headers =
        conn.in.substr(line_end + 2, mark - line_end - 2);
    std::size_t content_length = 0;
    if (FindContentLength(headers, &content_length)) {
      if (content_length > options_.max_body_bytes) {
        QueueResponse(fd, SimpleResponse(413, "body too large\n"));
        return;
      }
      conn.content_length = content_length;
    }
    // Expose the header block to handlers (e.g. X-Request-Id passthrough).
    // Lines without a colon are silently skipped — tolerating them matches
    // how FindContentLength already scans the block.
    std::size_t pos = 0;
    while (pos < headers.size()) {
      std::size_t eol = headers.find("\r\n", pos);
      if (eol == std::string::npos) eol = headers.size();
      const std::size_t colon = headers.find(':', pos);
      if (colon != std::string::npos && colon < eol && colon > pos) {
        std::size_t vb = colon + 1;
        while (vb < eol && (headers[vb] == ' ' || headers[vb] == '\t')) ++vb;
        std::size_t ve = eol;
        while (ve > vb &&
               (headers[ve - 1] == ' ' || headers[ve - 1] == '\t')) {
          --ve;
        }
        conn.request.headers.emplace_back(headers.substr(pos, colon - pos),
                                          headers.substr(vb, ve - vb));
      }
      pos = eol + 2;
      if (eol == headers.size()) break;
    }
  }

  if (conn.in.size() < conn.header_end + conn.content_length) return;
  conn.request.body =
      conn.in.substr(conn.header_end, conn.content_length);

  const auto path_it = routes_.find(conn.request.path);
  if (path_it == routes_.end()) {
    std::string route_list;
    for (const auto& [path, methods] : routes_) {
      route_list += ' ';
      route_list += path;
    }
    QueueResponse(fd,
                  SimpleResponse(404, "not found; routes:" + route_list + "\n"));
    return;
  }
  const auto method_it = path_it->second.find(conn.request.method);
  if (method_it == path_it->second.end()) {
    std::string allow;
    for (const auto& [method, handler] : path_it->second) {
      if (!allow.empty()) allow += ", ";
      allow += method;
    }
    HttpResponse resp;
    resp.code = 405;
    resp.body = "method not allowed\n";
    resp.headers.emplace_back("Allow", allow);
    QueueResponse(fd, resp);
    return;
  }

  conn.state = Conn::State::kDispatched;
  conn.dispatch_time = Clock::now();
  const std::shared_ptr<CompletionCore> core = completions_;
  const std::uint64_t gen = conn.gen;
  HttpResponder respond = [core, fd, gen](HttpResponse response) {
    std::lock_guard<std::mutex> lock(core->mu);
    if (!core->alive || core->wake_fd < 0) return;
    core->ready.push_back({fd, gen, std::move(response)});
    const char wake = 'c';
    [[maybe_unused]] const ssize_t n = write(core->wake_fd, &wake, 1);
  };
  method_it->second(conn.request, std::move(respond));
}

void HttpExporter::DrainCompletions() {
  std::vector<CompletionCore::Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_->mu);
    batch.swap(completions_->ready);
  }
  for (CompletionCore::Completion& done : batch) {
    const auto it = conns_.find(done.fd);
    // The generation check rejects completions for connections that died
    // and whose descriptor number was recycled for a new client.
    if (it == conns_.end() || it->second->gen != done.gen) continue;
    if (it->second->state != Conn::State::kDispatched) continue;
    QueueResponse(done.fd, done.response);
  }
}

void HttpExporter::QueueResponse(int fd, const HttpResponse& response) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  if (Enabled()) {
    // Label with the route only when it exists; arbitrary 404 paths would
    // otherwise mint unbounded counter cardinality.
    const std::string label =
        routes_.count(conn.request.path) != 0 ? conn.request.path : "<other>";
    DefaultRegistry()
        .GetCounter("tfb_http_requests_total{path=\"" + label + "\"}")
        .Increment();
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  conn.out = RenderResponse(response);
  conn.out_pos = 0;
  conn.state = Conn::State::kWriting;
  conn.last_activity = Clock::now();
  epoll_event ev{};
  ev.events = EPOLLOUT;
  ev.data.fd = fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  HandleWritable(fd);  // Often completes in one shot for small responses.
}

void HttpExporter::HandleWritable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  if (conn.state != Conn::State::kWriting) return;
  while (conn.out_pos < conn.out.size()) {
    const ssize_t n = send(fd, conn.out.data() + conn.out_pos,
                           conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        conn.last_activity = Clock::now();
        return;  // epoll will call back when the socket drains.
      }
      CloseConn(fd);
      return;
    }
    conn.out_pos += static_cast<std::size_t>(n);
  }
  CloseConn(fd);  // Full response written; HTTP/1.0 closes per request.
}

void HttpExporter::CloseConn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  close(fd);
  conns_.erase(it);
}

void HttpExporter::SweepIdle() {
  const auto now = Clock::now();
  std::vector<int> drop;
  std::vector<int> expire;
  for (const auto& [fd, conn] : conns_) {
    const auto idle_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             now - conn->last_activity)
                             .count();
    switch (conn->state) {
      case Conn::State::kReading:
      case Conn::State::kWriting:
        // Slow-loris / stalled reader: reclaim the slot silently.
        if (idle_ms > options_.idle_timeout_ms) drop.push_back(fd);
        break;
      case Conn::State::kDispatched: {
        const auto held_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - conn->dispatch_time)
                .count();
        if (held_ms > options_.handler_timeout_ms) expire.push_back(fd);
        break;
      }
    }
  }
  for (const int fd : drop) CloseConn(fd);
  for (const int fd : expire) {
    QueueResponse(fd, SimpleResponse(504, "handler timed out\n"));
  }
}

// --------------------------------------------------------------------------
// Client side.

namespace {

/// Blocking-with-deadline write of the full buffer; returns false on error
/// or budget exhaustion. MSG_NOSIGNAL: a server that disconnects mid-write
/// must produce EPIPE, not SIGPIPE.
bool WriteAll(int fd, const char* data, std::size_t size, int budget_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(budget_ms);
  std::size_t written = 0;
  while (written < size) {
    const auto now = Clock::now();
    if (now >= deadline) return false;
    pollfd pfd{fd, POLLOUT, 0};
    const int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    const int ready = poll(&pfd, 1, remaining);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) return false;
    const ssize_t n = send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool HttpCall(std::uint16_t port, const std::string& method,
              const std::string& path, const std::string& body,
              int* status_code, std::string* response_body, int timeout_ms) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return false;
  }
  std::string request = method + " " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n";
  if (!body.empty()) {
    request += "Content-Type: application/json\r\nContent-Length: " +
               std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n";
  request += body;
  if (!WriteAll(fd, request.data(), request.size(), timeout_ms)) {
    close(fd);
    return false;
  }
  // Partial-read loop with a recv deadline: a stalled server fails the call
  // after timeout_ms instead of hanging the test or load generator.
  std::string response;
  char buf[4096];
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    const auto now = Clock::now();
    if (now >= deadline) break;
    pollfd pfd{fd, POLLIN, 0};
    const int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    const int ready = poll(&pfd, 1, remaining);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) break;
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;
    }
    if (n == 0) break;  // Server closed: full HTTP/1.0 response received.
    response.append(buf, static_cast<std::size_t>(n));
  }
  close(fd);

  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  // Status line: "HTTP/1.0 200 OK".
  const std::size_t sp = response.find(' ');
  if (sp == std::string::npos || sp + 1 >= response.size()) return false;
  int code = 0;
  for (std::size_t i = sp + 1; i < response.size(); ++i) {
    const char c = response[i];
    if (c < '0' || c > '9') break;
    code = code * 10 + (c - '0');
  }
  if (code < 100) return false;
  if (status_code != nullptr) *status_code = code;
  if (response_body != nullptr) {
    *response_body = response.substr(header_end + 4);
  }
  return true;
}

bool HttpGet(std::uint16_t port, const std::string& path, std::string* body,
             int timeout_ms) {
  int code = 0;
  if (!HttpCall(port, "GET", path, "", &code, body, timeout_ms)) return false;
  return code >= 200 && code < 300;
}

bool HttpPost(std::uint16_t port, const std::string& path,
              const std::string& request_body, int* status_code,
              std::string* response_body, int timeout_ms) {
  return HttpCall(port, "POST", path, request_body, status_code, response_body,
                  timeout_ms);
}

}  // namespace tfb::obs
