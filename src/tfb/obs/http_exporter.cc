#include "tfb/obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "tfb/obs/log.h"

namespace tfb::obs {

namespace {

// Wall-time budget for one connection (read request + write response): a
// stuck client must not wedge the single-threaded server.
constexpr int kConnectionBudgetMs = 2000;

void CloseIfOpen(int* fd) {
  if (*fd >= 0) close(*fd);
  *fd = -1;
}

/// Blocking-with-deadline write of the full buffer; returns false on error
/// or budget exhaustion. MSG_NOSIGNAL: a scraper that disconnects mid-write
/// must produce EPIPE, not SIGPIPE.
bool WriteAll(int fd, const char* data, std::size_t size, int budget_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
  std::size_t written = 0;
  while (written < size) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    pollfd pfd{fd, POLLOUT, 0};
    const int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    const int ready = poll(&pfd, 1, remaining);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) return false;
    const ssize_t n =
        send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads until the end of the request headers ("\r\n\r\n") or the budget
/// runs out. GET requests have no body, so the headers are the request.
bool ReadRequest(int fd, int budget_ms, std::string* request) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
  char buf[2048];
  while (request->find("\r\n\r\n") == std::string::npos) {
    if (request->size() > 64 * 1024) return false;  // Header bomb.
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    pollfd pfd{fd, POLLIN, 0};
    const int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    const int ready = poll(&pfd, 1, remaining);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) return false;
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;
    }
    if (n == 0) return false;  // Peer closed before finishing the request.
    request->append(buf, static_cast<std::size_t>(n));
  }
  return true;
}

struct Response {
  int code = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

const char* ReasonPhrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

}  // namespace

HttpExporter::~HttpExporter() { Stop(); }

base::Status HttpExporter::Start() {
  if (serving_.load(std::memory_order_acquire)) {
    return base::Status::Internal("http exporter already serving");
  }
  if (options_.registry == nullptr) options_.registry = &DefaultRegistry();
  if (options_.progress == nullptr) {
    options_.progress = &DefaultProgressTracker();
  }

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return base::Status::Internal(std::string("socket: ") +
                                  std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    CloseIfOpen(&listen_fd_);
    return base::Status::InvalidInput("bad bind address: " +
                                      options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    CloseIfOpen(&listen_fd_);
    return base::Status::Internal("bind " + options_.bind_address + ":" +
                                  std::to_string(options_.port) + ": " + err);
  }
  // Full system backlog: a scrape burst (several dashboards + CI probes)
  // must queue, not get connection-refused.
  if (listen(listen_fd_, SOMAXCONN) != 0) {
    const std::string err = std::strerror(errno);
    CloseIfOpen(&listen_fd_);
    return base::Status::Internal("listen: " + err);
  }
  // Recover the actual port when an ephemeral one (port 0) was requested.
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  if (pipe(wake_fds_) != 0) {
    const std::string err = std::strerror(errno);
    CloseIfOpen(&listen_fd_);
    return base::Status::Internal("pipe: " + err);
  }

  serving_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  DefaultLogger().Info("telemetry endpoint up",
                       {{"addr", options_.bind_address},
                        {"port", std::to_string(port_)},
                        {"routes", "/metrics /status /healthz"}});
  return base::Status::Ok();
}

void HttpExporter::Stop() {
  if (!serving_.exchange(false, std::memory_order_acq_rel)) return;
  // Wake the poll() in Serve(); the byte's value is irrelevant.
  const char wake = 'x';
  [[maybe_unused]] const ssize_t n = write(wake_fds_[1], &wake, 1);
  if (thread_.joinable()) thread_.join();
  CloseIfOpen(&listen_fd_);
  CloseIfOpen(&wake_fds_[0]);
  CloseIfOpen(&wake_fds_[1]);
  port_ = 0;
}

void HttpExporter::Serve() {
  while (serving_.load(std::memory_order_acquire)) {
    pollfd pfds[2] = {{listen_fd_, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    const int ready = poll(pfds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((pfds[1].revents & POLLIN) != 0) break;  // Stop() pinged us.
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int client = accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      // Out of descriptors (the benchmark's own fds + a scrape burst):
      // transient — back off briefly so pending connections drain as fds
      // free up, instead of spinning on a hot poll/accept-fail loop.
      if (errno == EMFILE || errno == ENFILE) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      continue;
    }
    Handle(client);
    close(client);
  }
}

void HttpExporter::Handle(int client_fd) {
  std::string request;
  if (!ReadRequest(client_fd, kConnectionBudgetMs, &request)) return;

  // Request line: "GET /status HTTP/1.1".
  const std::size_t line_end = request.find("\r\n");
  const std::string line = request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  std::string method =
      sp1 == std::string::npos ? line : line.substr(0, sp1);
  std::string path = (sp1 == std::string::npos || sp2 == std::string::npos)
                         ? std::string("/")
                         : line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (const std::size_t q = path.find('?'); q != std::string::npos) {
    path.resize(q);  // Ignore query strings.
  }

  Response resp;
  if (method != "GET") {
    resp.code = 405;
    resp.body = "method not allowed\n";
  } else if (path == "/healthz") {
    resp.body = "ok\n";
  } else if (path == "/metrics") {
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = options_.registry->ToPrometheusText();
  } else if (path == "/status") {
    resp.content_type = "application/json";
    resp.body = options_.progress->StatusJson(options_.run_id);
    resp.body += '\n';
  } else {
    resp.code = 404;
    resp.body = "not found; routes: /metrics /status /healthz\n";
  }

  if (Enabled()) {
    DefaultRegistry()
        .GetCounter("tfb_http_requests_total{path=\"" + path + "\"}")
        .Increment();
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  char header[256];
  std::snprintf(header, sizeof(header),
                "HTTP/1.0 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n"
                "\r\n",
                resp.code, ReasonPhrase(resp.code), resp.content_type.c_str(),
                resp.body.size());
  std::string out = header;
  out += resp.body;
  WriteAll(client_fd, out.data(), out.size(), kConnectionBudgetMs);
}

bool HttpGet(std::uint16_t port, const std::string& path, std::string* body) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return false;
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
  if (!WriteAll(fd, request.data(), request.size(), kConnectionBudgetMs)) {
    close(fd);
    return false;
  }
  std::string response;
  char buf[4096];
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(kConnectionBudgetMs);
  while (true) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    pollfd pfd{fd, POLLIN, 0};
    const int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    const int ready = poll(&pfd, 1, remaining);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) break;
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;
    }
    if (n == 0) break;  // Server closed: full HTTP/1.0 response received.
    response.append(buf, static_cast<std::size_t>(n));
  }
  close(fd);

  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  // Status line: "HTTP/1.0 200 OK".
  const std::size_t sp = response.find(' ');
  if (sp == std::string::npos || sp + 1 >= response.size()) return false;
  if (response[sp + 1] != '2') return false;  // Non-2xx.
  if (body != nullptr) *body = response.substr(header_end + 4);
  return true;
}

}  // namespace tfb::obs
