#ifndef TFB_OBS_METRICS_H_
#define TFB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

/// \file
/// Lock-sharded metrics registry (the "Observability" section of DESIGN.md):
/// counters, gauges, and fixed-bucket histograms, exportable as
/// Prometheus text or JSON. Instrument lookup takes one shard mutex; the
/// instruments themselves are lock-free (atomics), so parallel runner
/// workers, the sandbox supervisor, and the nn trainer can all record into
/// one registry without serializing on a global lock.
///
/// Naming convention: `tfb_<subsystem>_<what>[_total|_seconds|...]`, with
/// optional Prometheus-style labels embedded in the name
/// (`tfb_sandbox_fate_total{fate="timeout"}`) — the registry treats the
/// full string as the identity and the exporters emit it verbatim, which
/// keeps label support free of a label-set data model.

namespace tfb::obs {

/// Whether observability collection is on. Off by default: every
/// instrumentation site in the pipeline guards on this, so a run without
/// `--trace-out`/`--metrics-out` pays one relaxed atomic load per site
/// (the ≤2% overhead budget of DESIGN.md, measured by
/// bench_runner_throughput).
bool Enabled();

/// Turns collection on/off process-wide (also gates the default tracer's
/// spans). Not reset between runs; tests that flip it should restore it.
void SetEnabled(bool enabled);

/// Monotonically increasing value (task counts, retries, spawned children).
class Counter {
 public:
  void Increment(double delta = 1.0) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-write-wins value (queue depth, in-flight tasks).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket bounds are chosen at creation and never
/// change, so Observe() is a binary search plus two relaxed atomic adds.
/// Quantiles are estimated by linear interpolation inside the bucket —
/// exact enough for the p50/p95 latency lines of BENCH_pipeline.json.
class Histogram {
 public:
  /// `bounds` are inclusive upper bounds of the finite buckets, strictly
  /// increasing; one implicit +inf bucket is appended.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  /// Adds pre-counted observations bucket-by-bucket (fleet telemetry merge:
  /// a worker ships per-bucket deltas, the coordinator replays them here).
  /// `bucket_deltas` must have bounds().size() + 1 entries; mismatched
  /// shapes are ignored rather than corrupting the histogram.
  void MergeBuckets(const std::vector<std::uint64_t>& bucket_deltas,
                    double sum_delta);

  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;
  /// Estimated q-quantile (q in [0,1]); 0 when empty. The top (+inf)
  /// bucket reports its lower bound (no upper edge to interpolate to).
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative count of observations <= bounds()[i]; the last entry (for
  /// the +inf bucket) equals Count().
  std::vector<std::uint64_t> CumulativeCounts() const;
  /// Raw per-bucket counts (bounds().size() + 1 entries, not cumulative) —
  /// the shape telemetry snapshots diff and ship.
  std::vector<std::uint64_t> BucketCounts() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Exponential bucket bounds: `first`, `first*factor`, ... (`count` bounds).
/// The default latency buckets of the pipeline: 1ms..~17min at factor 2.
std::vector<double> ExponentialBounds(double first = 1e-3, double factor = 2.0,
                                      std::size_t count = 20);

/// The lock-sharded instrument registry. Get* returns a reference that
/// stays valid for the registry's lifetime (instruments are never removed);
/// callers on hot paths may cache it. A name identifies exactly one
/// instrument; re-Get with a different kind returns a fresh instrument of
/// the requested kind without disturbing the first (names should not be
/// reused across kinds).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `bounds` are used only on first creation of `name`.
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);

  /// Prometheus text exposition (sorted by name; histograms expand to
  /// *_bucket/_sum/_count lines with cumulative `le` labels).
  std::string ToPrometheusText() const;
  /// One JSON object keyed by instrument name; histograms carry
  /// count/sum/p50/p95/p99 plus their buckets (quantiles are `null` while
  /// the histogram is empty — 0 would read as a real measurement).
  std::string ToJson() const;

  /// A point-in-time copy of every instrument. Fleet telemetry uses two of
  /// these on the worker to compute deltas since the last ship, and the
  /// coordinator replays those deltas into its own registry.
  struct Snapshot {
    struct HistogramState {
      std::vector<double> bounds;
      std::vector<std::uint64_t> buckets;  // Raw per-bucket counts.
      double sum = 0.0;
    };
    std::map<std::string, double> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramState> histograms;
  };
  Snapshot TakeSnapshot() const;

  /// Drops every instrument (for test isolation and repeated bench runs).
  /// Invalidates previously returned references.
  void Reset();

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, std::unique_ptr<Counter>> counters;
    std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges;
    std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms;
  };
  static constexpr std::size_t kShards = 8;
  Shard& ShardFor(const std::string& name);

  Shard shards_[kShards];
};

/// The process-wide registry every pipeline instrumentation site records
/// into and the `--metrics-out` exporter reads from.
Registry& DefaultRegistry();

/// Writes `registry` to `path`: Prometheus text exposition, or the JSON
/// export when the path ends in ".json". Returns false on I/O failure.
bool WriteMetricsFile(const Registry& registry, const std::string& path);

}  // namespace tfb::obs

#endif  // TFB_OBS_METRICS_H_
