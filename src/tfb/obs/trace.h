#ifndef TFB_OBS_TRACE_H_
#define TFB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

/// \file
/// Chrome `trace_event` tracer: scoped spans and instant events recorded
/// into a fixed-capacity ring buffer and exported as JSON loadable by
/// `chrome://tracing` / Perfetto. Disabled by default; when disabled a
/// ScopedSpan costs one relaxed atomic load (see the overhead budget in
/// DESIGN.md "Observability"). When the ring fills, the oldest events are
/// overwritten — memory stays bounded on arbitrarily long grids and the
/// trace keeps the most recent window, which is the one a hang or slowdown
/// investigation needs.

namespace tfb::obs {

/// One recorded event. `phase` follows the trace_event format: 'X' =
/// complete (duration) event, 'i' = instant event, 'M' = metadata (e.g.
/// `process_name`, which names remote-worker pids in the merged trace).
struct TraceEvent {
  const char* name = "";  ///< Static string (span names are literals).
  const char* category = "";
  char phase = 'X';
  double ts_us = 0.0;   ///< Microseconds since tracer start (steady clock).
  double dur_us = 0.0;  ///< Complete events only.
  std::int64_t pid = 0;
  std::int64_t tid = 0;
  /// Pre-rendered JSON object body for "args" (no braces), e.g.
  /// `"dataset":"ILI","method":"VAR"`. Empty = no args.
  std::string args;
};

/// Microseconds since process-wide tracer epoch (a steady clock, so spans
/// recorded on different threads share one timeline).
double TraceNowMicros();

/// The ring-buffered event sink. Thread-safe: Record* may be called from
/// every runner worker and the sandbox supervisor concurrently.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Starts capturing, dropping anything previously recorded. `capacity`
  /// bounds the event count (and therefore memory) for the whole run.
  void Enable(std::size_t capacity = kDefaultCapacity);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records a complete ('X') event; no-op when disabled.
  void RecordComplete(const char* name, const char* category, double ts_us,
                      double dur_us, std::string args = "");
  /// Records an instant ('i') event at now; no-op when disabled.
  void RecordInstant(const char* name, const char* category,
                     std::string args = "");
  /// Records `event` exactly as given — pid/tid/ts/phase are the caller's.
  /// This is how the shard coordinator stitches spans shipped from remote
  /// workers (already timestamped on the worker's clock and re-aligned via
  /// the per-connection offset) into its own ring. `event.name` and
  /// `event.category` must outlive the tracer; intern dynamic strings with
  /// InternTraceName first. No-op when disabled.
  void RecordForeign(TraceEvent event);

  /// Events currently in the ring, oldest first (ring order, not ts order).
  std::vector<TraceEvent> Snapshot() const;
  /// Incremental drain for telemetry shipping: returns every event recorded
  /// at global index >= *cursor that is still in the ring (overwritten ones
  /// are gone — the caller observes the loss as a cursor jump), then
  /// advances *cursor to the current recorded() count. Start with cursor 0.
  std::vector<TraceEvent> DrainSince(std::uint64_t* cursor) const;
  /// Events recorded since Enable (>= Snapshot().size(); the difference is
  /// how many the ring overwrote).
  std::uint64_t recorded() const;
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const;

  /// Serializes the ring as `{"traceEvents":[...]}` JSON, events sorted by
  /// timestamp. Load with chrome://tracing or https://ui.perfetto.dev.
  std::string ToJson() const;
  /// Writes ToJson() to `path`; false on I/O failure.
  bool WriteJson(const std::string& path) const;

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

 private:
  void Record(TraceEvent event);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_ = 0;
  std::uint64_t recorded_ = 0;
};

/// The process-wide tracer all pipeline spans record into.
Tracer& DefaultTracer();

/// Interns `name` into a process-lifetime string pool and returns a stable
/// `const char*` usable as TraceEvent::name / ::category. TraceEvent stores
/// names by pointer (span sites use literals); spans deserialized off the
/// wire arrive as std::string and must be interned before RecordForeign.
/// The pool is capped — beyond ~4096 distinct names it returns a shared
/// "<interned-overflow>" sentinel instead of growing without bound.
const char* InternTraceName(const std::string& name);

/// RAII span: records one complete event on the default tracer covering its
/// own lifetime. Decides at construction whether it is active (tracer
/// enabled), so a span that straddles Disable() still records consistently.
class ScopedSpan {
 public:
  /// `name`/`category` must be string literals (stored by pointer).
  ScopedSpan(const char* name, const char* category, std::string args = "");
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  std::string args_;
  double start_us_ = 0.0;
  bool active_ = false;
};

/// Renders `"key":"value"` pairs for TraceEvent::args / ScopedSpan args,
/// JSON-escaping the values. Usage: ArgsJson({{"dataset", "ILI"}}).
std::string ArgsJson(
    std::initializer_list<std::pair<const char*, std::string>> pairs);

}  // namespace tfb::obs

#endif  // TFB_OBS_TRACE_H_
