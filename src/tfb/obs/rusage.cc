#include "tfb/obs/rusage.h"

#include <algorithm>

#include <sys/resource.h>

namespace tfb::obs {

namespace {

double TimevalSeconds(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) +
         static_cast<double>(tv.tv_usec) * 1e-6;
}

ResourceUsage FromRusage(const rusage& ru, bool with_rss) {
  ResourceUsage out;
  out.user_cpu_seconds = TimevalSeconds(ru.ru_utime);
  out.sys_cpu_seconds = TimevalSeconds(ru.ru_stime);
  // Linux reports ru_maxrss in KiB.
  if (with_rss) out.max_rss_mb = static_cast<double>(ru.ru_maxrss) / 1024.0;
  return out;
}

}  // namespace

ResourceUsage SelfUsage() {
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return {};
  return FromRusage(ru, /*with_rss=*/true);
}

ResourceUsage ThreadUsage() {
#if defined(RUSAGE_THREAD)
  rusage ru{};
  if (getrusage(RUSAGE_THREAD, &ru) != 0) return {};
  return FromRusage(ru, /*with_rss=*/false);
#else
  ResourceUsage out = SelfUsage();
  out.max_rss_mb = 0.0;  // Not attributable to the calling thread.
  return out;
#endif
}

ResourceUsage UsageDelta(const ResourceUsage& begin,
                         const ResourceUsage& end) {
  ResourceUsage out;
  out.user_cpu_seconds =
      std::max(0.0, end.user_cpu_seconds - begin.user_cpu_seconds);
  out.sys_cpu_seconds =
      std::max(0.0, end.sys_cpu_seconds - begin.sys_cpu_seconds);
  if (begin.max_rss_mb == 0.0) out.max_rss_mb = end.max_rss_mb;
  return out;
}

}  // namespace tfb::obs
