#include "tfb/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <set>
#include <thread>

#include <sys/syscall.h>
#include <unistd.h>

namespace tfb::obs {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point TraceEpoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

std::int64_t CurrentTid() {
#if defined(SYS_gettid)
  return static_cast<std::int64_t>(syscall(SYS_gettid));
#else
  return static_cast<std::int64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0x7fffffff);
#endif
}

void AppendEscaped(std::string* out, const char* s) {
  out->push_back('"');
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

double TraceNowMicros() {
  return std::chrono::duration<double, std::micro>(Clock::now() - TraceEpoch())
      .count();
}

void Tracer::Enable(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = std::max<std::size_t>(1, capacity);
  ring_.clear();
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
  recorded_ = 0;
  TraceEpoch();  // Pin the epoch no later than the first span.
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::Record(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0) return;  // Enable() never ran.
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[recorded_ % capacity_] = std::move(event);
  }
  ++recorded_;
}

void Tracer::RecordComplete(const char* name, const char* category,
                            double ts_us, double dur_us, std::string args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = 'X';
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.pid = static_cast<std::int64_t>(getpid());
  event.tid = CurrentTid();
  event.args = std::move(args);
  Record(std::move(event));
}

void Tracer::RecordForeign(TraceEvent event) {
  if (!enabled()) return;
  Record(std::move(event));
}

void Tracer::RecordInstant(const char* name, const char* category,
                           std::string args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = 'i';
  event.ts_us = TraceNowMicros();
  event.pid = static_cast<std::int64_t>(getpid());
  event.tid = CurrentTid();
  event.args = std::move(args);
  Record(std::move(event));
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_ || capacity_ == 0) return ring_;
  // Full ring: unroll so the snapshot is oldest-first.
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  const std::size_t head = recorded_ % capacity_;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head + i) % capacity_]);
  }
  return out;
}

std::vector<TraceEvent> Tracer::DrainSince(std::uint64_t* cursor) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  if (capacity_ == 0 || *cursor >= recorded_) {
    *cursor = recorded_;
    return out;
  }
  // Oldest index still resident; anything before it was overwritten.
  const std::uint64_t oldest = recorded_ - ring_.size();
  const std::uint64_t begin = std::max(*cursor, oldest);
  out.reserve(static_cast<std::size_t>(recorded_ - begin));
  for (std::uint64_t i = begin; i < recorded_; ++i) {
    out.push_back(ring_[i % capacity_]);
  }
  *cursor = recorded_;
  return out;
}

std::uint64_t Tracer::recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::uint64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

std::string Tracer::ToJson() const {
  std::vector<TraceEvent> events = Snapshot();
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  std::string out = "{\"traceEvents\":[";
  char buf[64];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out += ",";
    out += "{\"name\":";
    AppendEscaped(&out, e.name);
    out += ",\"cat\":";
    AppendEscaped(&out, e.category);
    out += ",\"ph\":\"";
    out.push_back(e.phase);
    out += "\",\"ts\":";
    std::snprintf(buf, sizeof(buf), "%.3f", e.ts_us);
    out += buf;
    if (e.phase == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", e.dur_us);
      out += buf;
    }
    if (e.phase == 'i') out += ",\"s\":\"t\"";  // Thread-scoped instant.
    std::snprintf(buf, sizeof(buf), ",\"pid\":%lld,\"tid\":%lld",
                  static_cast<long long>(e.pid),
                  static_cast<long long>(e.tid));
    out += buf;
    if (!e.args.empty()) out += ",\"args\":{" + e.args + "}";
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool Tracer::WriteJson(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << ToJson() << '\n';
  return static_cast<bool>(os);
}

Tracer& DefaultTracer() {
  static Tracer* tracer = new Tracer();  // Leaked: outlives all users.
  return *tracer;
}

const char* InternTraceName(const std::string& name) {
  constexpr std::size_t kMaxInterned = 4096;
  static std::mutex* mu = new std::mutex();
  // Leaked: interned names must stay valid for every TraceEvent that
  // points at them, i.e. the process lifetime.
  static auto* pool = new std::set<std::string>();
  const std::lock_guard<std::mutex> lock(*mu);
  const auto it = pool->find(name);
  if (it != pool->end()) return it->c_str();
  if (pool->size() >= kMaxInterned) return "<interned-overflow>";
  return pool->insert(name).first->c_str();
}

ScopedSpan::ScopedSpan(const char* name, const char* category,
                       std::string args)
    : name_(name), category_(category), args_(std::move(args)) {
  active_ = DefaultTracer().enabled();
  if (active_) start_us_ = TraceNowMicros();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const double end_us = TraceNowMicros();
  DefaultTracer().RecordComplete(name_, category_, start_us_,
                                 end_us - start_us_, std::move(args_));
}

std::string ArgsJson(
    std::initializer_list<std::pair<const char*, std::string>> pairs) {
  std::string out;
  for (const auto& [key, value] : pairs) {
    if (!out.empty()) out += ",";
    AppendEscaped(&out, key);
    out += ":";
    AppendEscaped(&out, value.c_str());
  }
  return out;
}

}  // namespace tfb::obs
