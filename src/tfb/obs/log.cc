#include "tfb/obs/log.h"

#include <cctype>
#include <ctime>

namespace tfb::obs {

namespace {

/// Wall-clock timestamp split into the pieces the two sinks need: an
/// ISO-8601 UTC date-time plus the millisecond remainder.
struct Stamp {
  char iso[24];   // "2026-08-06T10:11:12"
  int millis = 0;
};

Stamp Now() {
  Stamp stamp;
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  tm utc{};
  gmtime_r(&ts.tv_sec, &utc);
  std::strftime(stamp.iso, sizeof(stamp.iso), "%Y-%m-%dT%H:%M:%S", &utc);
  stamp.millis = static_cast<int>(ts.tv_nsec / 1000000);
  return stamp;
}

/// Lower-case level name for the JSONL sink ("trace".."error").
const char* JsonLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

bool NeedsQuoting(std::string_view value) {
  if (value.empty()) return true;
  for (const char c : value) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '"' ||
        c == '=' || static_cast<unsigned char>(c) < 0x20) {
      return true;
    }
  }
  return false;
}

/// `key=value` text rendering; values with spaces/quotes/control bytes are
/// double-quoted with minimal escaping so the line stays one line.
void AppendTextField(std::string* out, const LogField& field) {
  *out += ' ';
  *out += field.key;
  *out += '=';
  if (!NeedsQuoting(field.value)) {
    *out += field.value;
    return;
  }
  out->push_back('"');
  for (const char c : field.value) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\x%02x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::optional<LogLevel> ParseLogLevel(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

Logger::~Logger() { CloseJsonlSink(); }

void Logger::SetTextSink(std::FILE* sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  text_sink_ = sink;
}

bool Logger::OpenJsonlSink(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (jsonl_sink_ != nullptr) std::fclose(jsonl_sink_);
  jsonl_sink_ = file;
  return true;
}

void Logger::CloseJsonlSink() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (jsonl_sink_ != nullptr) std::fclose(jsonl_sink_);
  jsonl_sink_ = nullptr;
}

void Logger::SetPreTextHook(std::function<void()> hook) {
  const std::lock_guard<std::mutex> lock(mutex_);
  pre_text_hook_ = std::move(hook);
}

void Logger::Log(LogLevel level, std::string_view message,
                 std::initializer_list<LogField> fields) {
  if (!ShouldLog(level) || level == LogLevel::kOff) return;
  const Stamp stamp = Now();

  // Both lines are rendered outside the lock; only the writes serialize.
  std::string text;
  std::string jsonl;
  {
    // "[10:11:12.345 WARN ] message key=value" — the clock-only prefix
    // keeps interactive lines short; the JSONL sink has the full date.
    char prefix[40];
    std::snprintf(prefix, sizeof(prefix), "[%s.%03d %s] ", stamp.iso + 11,
                  stamp.millis, LogLevelName(level));
    text = prefix;
    text.append(message.data(), message.size());
    for (const LogField& field : fields) AppendTextField(&text, field);
    text.push_back('\n');
  }
  {
    char ts[40];
    std::snprintf(ts, sizeof(ts), "%s.%03dZ", stamp.iso, stamp.millis);
    jsonl = "{\"ts\":\"";
    jsonl += ts;
    jsonl += "\",\"level\":\"";
    jsonl += JsonLevelName(level);
    jsonl += "\",\"msg\":";
    AppendJsonString(&jsonl, message);
    for (const LogField& field : fields) {
      jsonl += ',';
      AppendJsonString(&jsonl, field.key);
      jsonl += ':';
      AppendJsonString(&jsonl, field.value);
    }
    jsonl += "}\n";
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  if (text_sink_ != nullptr) {
    if (pre_text_hook_) pre_text_hook_();
    std::fwrite(text.data(), 1, text.size(), text_sink_);
    std::fflush(text_sink_);
  }
  if (jsonl_sink_ != nullptr) {
    // Flushed per line so `tail -f run.log.jsonl` follows a live run.
    std::fwrite(jsonl.data(), 1, jsonl.size(), jsonl_sink_);
    std::fflush(jsonl_sink_);
  }
  lines_.fetch_add(1, std::memory_order_relaxed);
}

Logger& DefaultLogger() {
  static Logger* logger = new Logger();  // Leaked: outlives all users.
  return *logger;
}

}  // namespace tfb::obs
