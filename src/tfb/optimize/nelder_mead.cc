#include "tfb/optimize/nelder_mead.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tfb/base/check.h"

namespace tfb::optimize {

NelderMeadResult NelderMead(const Objective& f, std::vector<double> x0,
                            const NelderMeadOptions& options) {
  const std::size_t n = x0.size();
  TFB_CHECK(n > 0);
  const double alpha = 1.0;   // reflection
  const double gamma = 2.0;   // expansion
  const double rho = 0.5;     // contraction
  const double sigma = 0.5;   // shrink

  std::vector<std::vector<double>> simplex(n + 1, x0);
  for (std::size_t i = 0; i < n; ++i) {
    simplex[i + 1][i] +=
        (x0[i] != 0.0 ? options.initial_step * std::fabs(x0[i])
                      : options.initial_step);
  }
  std::vector<double> values(n + 1);
  for (std::size_t i = 0; i <= n; ++i) values[i] = f(simplex[i]);

  std::vector<std::size_t> order(n + 1);
  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
    const std::size_t best = order[0];
    const std::size_t worst = order[n];
    // In 1-D the simplex has only two vertices, so the reflection
    // acceptance threshold is the worst vertex itself.
    const std::size_t second_worst = n >= 2 ? order[n - 1] : worst;
    // Converge on BOTH function spread and simplex diameter: a simplex
    // straddling a symmetric minimum has zero f-spread long before the
    // points coincide.
    const bool f_converged =
        std::fabs(values[worst] - values[best]) <
        options.tolerance * (std::fabs(values[best]) + options.tolerance);
    double x_spread = 0.0;
    for (std::size_t i = 0; i <= n; ++i) {
      for (std::size_t d = 0; d < n; ++d) {
        x_spread = std::max(
            x_spread, std::fabs(simplex[i][d] - simplex[best][d]));
      }
    }
    const double x_tolerance =
        std::sqrt(options.tolerance) * (1.0 + std::fabs(simplex[best][0]));
    if (f_converged && x_spread < x_tolerance) break;
    // Centroid of all points but the worst.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t d = 0; d < n; ++d) centroid[d] += simplex[i][d];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double coef) {
      std::vector<double> p(n);
      for (std::size_t d = 0; d < n; ++d) {
        p[d] = centroid[d] + coef * (centroid[d] - simplex[worst][d]);
      }
      return p;
    };

    std::vector<double> reflected = blend(alpha);
    const double fr = f(reflected);
    if (fr < values[best]) {
      std::vector<double> expanded = blend(gamma);
      const double fe = f(expanded);
      if (fe < fr) {
        simplex[worst] = std::move(expanded);
        values[worst] = fe;
      } else {
        simplex[worst] = std::move(reflected);
        values[worst] = fr;
      }
      continue;
    }
    if (fr < values[second_worst]) {
      simplex[worst] = std::move(reflected);
      values[worst] = fr;
      continue;
    }
    std::vector<double> contracted = blend(-rho);
    const double fc = f(contracted);
    if (fc < values[worst]) {
      simplex[worst] = std::move(contracted);
      values[worst] = fc;
      continue;
    }
    // Shrink toward the best vertex.
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == best) continue;
      for (std::size_t d = 0; d < n; ++d) {
        simplex[i][d] =
            simplex[best][d] + sigma * (simplex[i][d] - simplex[best][d]);
      }
      values[i] = f(simplex[i]);
    }
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    if (values[i] < values[best]) best = i;
  }
  return {simplex[best], values[best], iter};
}

double GoldenSection(const std::function<double(double)>& f, double lo,
                     double hi, double tolerance) {
  TFB_CHECK(lo <= hi);
  const double inv_phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo;
  double b = hi;
  double c = b - inv_phi * (b - a);
  double d = a + inv_phi * (b - a);
  double fc = f(c);
  double fd = f(d);
  while (b - a > tolerance) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - inv_phi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + inv_phi * (b - a);
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace tfb::optimize
