#ifndef TFB_OPTIMIZE_NELDER_MEAD_H_
#define TFB_OPTIMIZE_NELDER_MEAD_H_

#include <functional>
#include <vector>

namespace tfb::optimize {

/// Objective mapping a parameter vector to a scalar loss.
using Objective = std::function<double(const std::vector<double>&)>;

/// Options for the Nelder–Mead simplex search.
struct NelderMeadOptions {
  int max_iterations = 500;     ///< Hard iteration cap.
  double tolerance = 1e-8;      ///< Stop when simplex f-spread falls below.
  double initial_step = 0.1;    ///< Per-dimension simplex initialization step.
};

/// Result of a Nelder–Mead run.
struct NelderMeadResult {
  std::vector<double> x;  ///< Best parameter vector found.
  double value = 0.0;     ///< Objective at `x`.
  int iterations = 0;     ///< Iterations actually executed.
};

/// Derivative-free minimization via the Nelder–Mead simplex method with the
/// standard reflection/expansion/contraction/shrink coefficients. Used to fit
/// ARIMA (CSS), ETS smoothing parameters, and Kalman noise variances, where
/// gradients are awkward and dimensionality is small (<= ~8).
NelderMeadResult NelderMead(const Objective& f, std::vector<double> x0,
                            const NelderMeadOptions& options = {});

/// Minimizes a 1-D unimodal function on [lo, hi] via golden-section search.
double GoldenSection(const std::function<double(double)>& f, double lo,
                     double hi, double tolerance = 1e-7);

}  // namespace tfb::optimize

#endif  // TFB_OPTIMIZE_NELDER_MEAD_H_
