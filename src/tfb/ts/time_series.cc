#include "tfb/ts/time_series.h"

#include <utility>

namespace tfb::ts {

std::string FrequencyName(Frequency f) {
  switch (f) {
    case Frequency::kYearly: return "yearly";
    case Frequency::kQuarterly: return "quarterly";
    case Frequency::kMonthly: return "monthly";
    case Frequency::kWeekly: return "weekly";
    case Frequency::kDaily: return "daily";
    case Frequency::kHourly: return "hourly";
    case Frequency::kMinutes30: return "30 mins";
    case Frequency::kMinutes15: return "15 mins";
    case Frequency::kMinutes10: return "10 mins";
    case Frequency::kMinutes5: return "5 mins";
    case Frequency::kOther: return "other";
  }
  return "unknown";
}

std::size_t DefaultSeasonalPeriod(Frequency f) {
  switch (f) {
    case Frequency::kYearly: return 1;
    case Frequency::kQuarterly: return 4;
    case Frequency::kMonthly: return 12;
    case Frequency::kWeekly: return 52;
    case Frequency::kDaily: return 7;
    case Frequency::kHourly: return 24;
    case Frequency::kMinutes30: return 48;
    case Frequency::kMinutes15: return 96;
    case Frequency::kMinutes10: return 144;
    case Frequency::kMinutes5: return 288;
    case Frequency::kOther: return 1;
  }
  return 1;
}

std::string DomainName(Domain d) {
  switch (d) {
    case Domain::kTraffic: return "traffic";
    case Domain::kElectricity: return "electricity";
    case Domain::kEnergy: return "energy";
    case Domain::kEnvironment: return "environment";
    case Domain::kNature: return "nature";
    case Domain::kEconomic: return "economic";
    case Domain::kStock: return "stock";
    case Domain::kBanking: return "banking";
    case Domain::kHealth: return "health";
    case Domain::kWeb: return "web";
  }
  return "unknown";
}

TimeSeries TimeSeries::Univariate(std::vector<double> values) {
  const std::size_t n = values.size();
  return TimeSeries(linalg::Matrix::FromRowMajor(n, 1, std::move(values)));
}

TimeSeries TimeSeries::Variable(std::size_t var) const {
  TFB_CHECK(var < num_variables());
  TimeSeries out = Univariate(Column(var));
  out.name_ = name_;
  out.frequency_ = frequency_;
  out.domain_ = domain_;
  out.seasonal_period_ = seasonal_period_;
  return out;
}

TimeSeries TimeSeries::Slice(std::size_t begin, std::size_t end) const {
  TFB_CHECK(begin <= end && end <= length());
  linalg::Matrix m(end - begin, num_variables());
  for (std::size_t t = begin; t < end; ++t) {
    for (std::size_t v = 0; v < num_variables(); ++v) {
      m(t - begin, v) = values_(t, v);
    }
  }
  TimeSeries out(std::move(m));
  out.name_ = name_;
  out.frequency_ = frequency_;
  out.domain_ = domain_;
  out.seasonal_period_ = seasonal_period_;
  return out;
}

void TimeSeries::Append(const TimeSeries& other) {
  if (values_.empty()) {
    values_ = other.values_;
    return;
  }
  TFB_CHECK(other.num_variables() == num_variables());
  linalg::Matrix merged(length() + other.length(), num_variables());
  for (std::size_t t = 0; t < length(); ++t) {
    for (std::size_t v = 0; v < num_variables(); ++v) {
      merged(t, v) = values_(t, v);
    }
  }
  for (std::size_t t = 0; t < other.length(); ++t) {
    for (std::size_t v = 0; v < num_variables(); ++v) {
      merged(length() + t, v) = other.values_(t, v);
    }
  }
  values_ = std::move(merged);
}

}  // namespace tfb::ts
