#include "tfb/ts/scaler.h"

#include <algorithm>
#include <cmath>

#include "tfb/stats/descriptive.h"

namespace tfb::ts {

Scaler Scaler::Fit(const TimeSeries& train, ScalerKind kind) {
  Scaler s;
  s.kind_ = kind;
  const std::size_t n = train.num_variables();
  s.offset_.assign(n, 0.0);
  s.scale_.assign(n, 1.0);
  if (kind == ScalerKind::kNone) return s;
  for (std::size_t v = 0; v < n; ++v) {
    const std::vector<double> col = train.Column(v);
    if (kind == ScalerKind::kZScore) {
      s.offset_[v] = stats::Mean(col);
      const double sd = stats::StdDev(col);
      s.scale_[v] = sd > 1e-12 ? sd : 1.0;
    } else {  // kMinMax
      const double lo = stats::Min(col);
      const double hi = stats::Max(col);
      s.offset_[v] = lo;
      s.scale_[v] = (hi - lo) > 1e-12 ? (hi - lo) : 1.0;
    }
  }
  return s;
}

TimeSeries Scaler::Transform(const TimeSeries& series) const {
  TFB_CHECK(series.num_variables() == offset_.size() ||
            kind_ == ScalerKind::kNone);
  TimeSeries out = series;
  if (kind_ == ScalerKind::kNone) return out;
  for (std::size_t t = 0; t < out.length(); ++t) {
    for (std::size_t v = 0; v < out.num_variables(); ++v) {
      out.at(t, v) = (out.at(t, v) - offset_[v]) / scale_[v];
    }
  }
  return out;
}

TimeSeries Scaler::InverseTransform(const TimeSeries& series) const {
  TFB_CHECK(series.num_variables() == offset_.size() ||
            kind_ == ScalerKind::kNone);
  TimeSeries out = series;
  if (kind_ == ScalerKind::kNone) return out;
  for (std::size_t t = 0; t < out.length(); ++t) {
    for (std::size_t v = 0; v < out.num_variables(); ++v) {
      out.at(t, v) = out.at(t, v) * scale_[v] + offset_[v];
    }
  }
  return out;
}

std::vector<double> Scaler::TransformColumn(const std::vector<double>& x,
                                            std::size_t var) const {
  std::vector<double> out = x;
  if (kind_ == ScalerKind::kNone) return out;
  TFB_CHECK(var < offset_.size());
  for (double& v : out) v = (v - offset_[var]) / scale_[var];
  return out;
}

std::vector<double> Scaler::InverseTransformColumn(const std::vector<double>& x,
                                                   std::size_t var) const {
  std::vector<double> out = x;
  if (kind_ == ScalerKind::kNone) return out;
  TFB_CHECK(var < offset_.size());
  for (double& v : out) v = v * scale_[var] + offset_[var];
  return out;
}

}  // namespace tfb::ts
