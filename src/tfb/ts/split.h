#ifndef TFB_TS_SPLIT_H_
#define TFB_TS_SPLIT_H_

#include "tfb/ts/time_series.h"

namespace tfb::ts {

/// Chronological train/validation/test split ratios. The paper fixes either
/// 7:1:2 or 6:2:2 per dataset (Table 5) so that every method sees identical
/// data boundaries — one of TFB's fairness requirements.
struct SplitRatio {
  double train = 0.7;
  double val = 0.1;
  double test = 0.2;

  /// The 7:1:2 split.
  static SplitRatio Ratio712() { return {0.7, 0.1, 0.2}; }
  /// The 6:2:2 split.
  static SplitRatio Ratio622() { return {0.6, 0.2, 0.2}; }
};

/// A chronological three-way split of one series.
struct Split {
  TimeSeries train;
  TimeSeries val;
  TimeSeries test;
  std::size_t train_end = 0;  ///< Index of first validation row.
  std::size_t val_end = 0;    ///< Index of first test row.
};

/// Splits `series` chronologically by `ratio`. Boundaries are floor(T*r)
/// for train and train+val, which matches the reference implementation.
Split ChronologicalSplit(const TimeSeries& series, const SplitRatio& ratio);

}  // namespace tfb::ts

#endif  // TFB_TS_SPLIT_H_
