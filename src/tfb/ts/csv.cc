#include "tfb/ts/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace tfb::ts {

namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) fields.push_back(field);
  return fields;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0';
}

}  // namespace

bool WriteCsv(const TimeSeries& series, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  for (std::size_t v = 0; v < series.num_variables(); ++v) {
    if (v > 0) os << ',';
    os << 'v' << v;
  }
  os << '\n';
  os.precision(12);
  for (std::size_t t = 0; t < series.length(); ++t) {
    for (std::size_t v = 0; v < series.num_variables(); ++v) {
      if (v > 0) os << ',';
      os << series.at(t, v);
    }
    os << '\n';
  }
  return static_cast<bool>(os);
}

std::optional<TimeSeries> ReadCsv(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  std::string line;
  if (!std::getline(is, line)) return std::nullopt;
  // Determine which columns are numeric by inspecting the first data row.
  std::streampos data_start = is.tellg();
  if (!std::getline(is, line)) return std::nullopt;
  const std::vector<std::string> probe = SplitLine(line);
  std::vector<bool> numeric(probe.size(), false);
  std::size_t num_numeric = 0;
  for (std::size_t i = 0; i < probe.size(); ++i) {
    double unused;
    numeric[i] = ParseDouble(probe[i], &unused);
    if (numeric[i]) ++num_numeric;
  }
  if (num_numeric == 0) return std::nullopt;
  is.seekg(data_start);

  std::vector<double> values;
  std::size_t rows = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitLine(line);
    if (fields.size() != numeric.size()) return std::nullopt;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (!numeric[i]) continue;
      double v;
      if (!ParseDouble(fields[i], &v)) return std::nullopt;
      values.push_back(v);
    }
    ++rows;
  }
  return TimeSeries(
      linalg::Matrix::FromRowMajor(rows, num_numeric, std::move(values)));
}

}  // namespace tfb::ts
