#include "tfb/ts/csv.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace tfb::ts {

namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) fields.push_back(field);
  return fields;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0';
}

std::string CellContext(const std::string& path, std::size_t line_number,
                        std::size_t column) {
  return path + " line " + std::to_string(line_number) + ", column " +
         std::to_string(column + 1);
}

}  // namespace

bool WriteCsv(const TimeSeries& series, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  for (std::size_t v = 0; v < series.num_variables(); ++v) {
    if (v > 0) os << ',';
    os << 'v' << v;
  }
  os << '\n';
  os.precision(12);
  for (std::size_t t = 0; t < series.length(); ++t) {
    for (std::size_t v = 0; v < series.num_variables(); ++v) {
      if (v > 0) os << ',';
      os << series.at(t, v);
    }
    os << '\n';
  }
  return static_cast<bool>(os);
}

base::Status ReadCsv(const std::string& path, TimeSeries* out,
                     const CsvReadOptions& options) {
  std::ifstream is(path);
  if (!is) return base::Status::Internal("cannot open " + path);
  std::string line;
  if (!std::getline(is, line)) {
    return base::Status::InvalidInput(path + ": empty file (no header row)");
  }
  // Determine which columns are numeric by inspecting the first data row.
  const std::streampos data_start = is.tellg();
  if (!std::getline(is, line)) {
    return base::Status::InvalidInput(path + ": header but no data rows");
  }
  const std::vector<std::string> probe = SplitLine(line);
  std::vector<bool> numeric(probe.size(), false);
  std::size_t num_numeric = 0;
  for (std::size_t i = 0; i < probe.size(); ++i) {
    double unused;
    numeric[i] = ParseDouble(probe[i], &unused);
    if (numeric[i]) ++num_numeric;
  }
  if (num_numeric == 0) {
    return base::Status::InvalidInput(
        path + " line 2: no numeric columns in the first data row");
  }
  is.clear();
  is.seekg(data_start);

  std::vector<double> values;
  std::size_t rows = 0;
  std::size_t line_number = 1;  // The header was line 1.
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitLine(line);
    if (fields.size() != numeric.size()) {
      return base::Status::InvalidInput(
          path + " line " + std::to_string(line_number) + ": ragged row (" +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(numeric.size()) + ")");
    }
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (!numeric[i]) continue;
      double v;
      if (!ParseDouble(fields[i], &v)) {
        return base::Status::InvalidInput(
            CellContext(path, line_number, i) + ": unparsable numeric \"" +
            fields[i] + "\"");
      }
      if (!options.allow_non_finite && !std::isfinite(v)) {
        return base::Status::InvalidInput(
            CellContext(path, line_number, i) + ": non-finite cell \"" +
            fields[i] + "\" (pass allow_non_finite to keep NaN gaps for "
            "imputation)");
      }
      values.push_back(v);
    }
    ++rows;
  }
  *out = TimeSeries(
      linalg::Matrix::FromRowMajor(rows, num_numeric, std::move(values)));
  return base::Status::Ok();
}

std::optional<TimeSeries> ReadCsv(const std::string& path) {
  TimeSeries series;
  CsvReadOptions options;
  options.allow_non_finite = true;
  if (!ReadCsv(path, &series, options).ok()) return std::nullopt;
  return series;
}

}  // namespace tfb::ts
