#ifndef TFB_TS_TIME_SERIES_H_
#define TFB_TS_TIME_SERIES_H_

#include <string>
#include <vector>

#include "tfb/linalg/matrix.h"

namespace tfb::ts {

/// Sampling frequency taxonomy used by the benchmark (Tables 4–5).
enum class Frequency {
  kYearly,
  kQuarterly,
  kMonthly,
  kWeekly,
  kDaily,
  kHourly,
  kMinutes30,
  kMinutes15,
  kMinutes10,
  kMinutes5,
  kOther,
};

/// Human-readable frequency label ("hourly", "5 mins", ...).
std::string FrequencyName(Frequency f);

/// Canonical seasonal period for a frequency (e.g. monthly -> 12,
/// hourly -> 24); used as the default seasonality S in MASE and as a hint
/// to STL. Returns 1 when no natural period exists (yearly, other).
std::size_t DefaultSeasonalPeriod(Frequency f);

/// Application domain taxonomy (Issue 1 in the paper: 10 domains).
enum class Domain {
  kTraffic,
  kElectricity,
  kEnergy,
  kEnvironment,
  kNature,
  kEconomic,
  kStock,
  kBanking,
  kHealth,
  kWeb,
};

/// Human-readable domain label.
std::string DomainName(Domain d);

/// A multivariate time series: T time points x N variables, stored
/// row-major (row = time point). N == 1 represents a univariate series
/// (Definition 1 in the paper). TimeSeries is the standardized in-memory
/// format of the data layer: every dataset, synthetic or loaded from CSV,
/// is converted to this representation before entering the pipeline.
class TimeSeries {
 public:
  TimeSeries() = default;

  /// Wraps a (T x N) matrix of observations.
  explicit TimeSeries(linalg::Matrix values) : values_(std::move(values)) {}

  /// Builds a univariate series from raw values.
  static TimeSeries Univariate(std::vector<double> values);

  /// Number of time points T.
  std::size_t length() const { return values_.rows(); }
  /// Number of variables N.
  std::size_t num_variables() const { return values_.cols(); }
  /// True for N == 1.
  bool is_univariate() const { return values_.cols() == 1; }

  /// Value of variable `var` at time `t`.
  double at(std::size_t t, std::size_t var) const { return values_(t, var); }
  double& at(std::size_t t, std::size_t var) { return values_(t, var); }

  /// Underlying (T x N) observation matrix.
  const linalg::Matrix& values() const { return values_; }
  linalg::Matrix& values() { return values_; }

  /// Copies variable `var` as a plain vector.
  std::vector<double> Column(std::size_t var) const {
    return values_.ColVector(var);
  }

  /// Extracts variable `var` as a univariate TimeSeries, keeping metadata.
  TimeSeries Variable(std::size_t var) const;

  /// Returns rows [begin, end) as a new TimeSeries, keeping metadata.
  TimeSeries Slice(std::size_t begin, std::size_t end) const;

  /// Appends the rows of `other` (same N) after this series.
  void Append(const TimeSeries& other);

  /// Dataset name, e.g. "ETTh2".
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Sampling frequency.
  Frequency frequency() const { return frequency_; }
  void set_frequency(Frequency f) { frequency_ = f; }

  /// Application domain.
  Domain domain() const { return domain_; }
  void set_domain(Domain d) { domain_ = d; }

  /// Known seasonal period (0 = unknown; use DefaultSeasonalPeriod or
  /// detection).
  std::size_t seasonal_period() const { return seasonal_period_; }
  void set_seasonal_period(std::size_t p) { seasonal_period_ = p; }

 private:
  linalg::Matrix values_;
  std::string name_;
  Frequency frequency_ = Frequency::kOther;
  Domain domain_ = Domain::kWeb;
  std::size_t seasonal_period_ = 0;
};

}  // namespace tfb::ts

#endif  // TFB_TS_TIME_SERIES_H_
