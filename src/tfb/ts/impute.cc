#include "tfb/ts/impute.h"

#include <cmath>

#include "tfb/stats/descriptive.h"

namespace tfb::ts {

namespace {

bool Valid(double v) { return std::isfinite(v); }

void ImputeColumn(TimeSeries& series, std::size_t var, ImputeKind kind) {
  const std::size_t t = series.length();
  // Collect valid statistics.
  double mean = 0.0;
  std::size_t valid_count = 0;
  for (std::size_t i = 0; i < t; ++i) {
    if (Valid(series.at(i, var))) {
      mean += series.at(i, var);
      ++valid_count;
    }
  }
  if (valid_count == 0) {
    for (std::size_t i = 0; i < t; ++i) series.at(i, var) = 0.0;
    return;
  }
  mean /= static_cast<double>(valid_count);

  switch (kind) {
    case ImputeKind::kZero:
      for (std::size_t i = 0; i < t; ++i) {
        if (!Valid(series.at(i, var))) series.at(i, var) = 0.0;
      }
      return;
    case ImputeKind::kMean:
      for (std::size_t i = 0; i < t; ++i) {
        if (!Valid(series.at(i, var))) series.at(i, var) = mean;
      }
      return;
    case ImputeKind::kForwardFill: {
      double last = mean;  // leading gap fallback: first valid value below
      for (std::size_t i = 0; i < t; ++i) {
        if (Valid(series.at(i, var))) {
          last = series.at(i, var);
          break;
        }
      }
      for (std::size_t i = 0; i < t; ++i) {
        if (Valid(series.at(i, var))) {
          last = series.at(i, var);
        } else {
          series.at(i, var) = last;
        }
      }
      return;
    }
    case ImputeKind::kLinear: {
      std::size_t i = 0;
      while (i < t) {
        if (Valid(series.at(i, var))) {
          ++i;
          continue;
        }
        // Gap [gap_begin, gap_end).
        const std::size_t gap_begin = i;
        std::size_t gap_end = i;
        while (gap_end < t && !Valid(series.at(gap_end, var))) ++gap_end;
        const bool has_left = gap_begin > 0;
        const bool has_right = gap_end < t;
        if (has_left && has_right) {
          const double left = series.at(gap_begin - 1, var);
          const double right = series.at(gap_end, var);
          const double span = static_cast<double>(gap_end - gap_begin + 1);
          for (std::size_t j = gap_begin; j < gap_end; ++j) {
            const double frac =
                static_cast<double>(j - gap_begin + 1) / span;
            series.at(j, var) = left + frac * (right - left);
          }
        } else {
          const double fill = has_left ? series.at(gap_begin - 1, var)
                              : has_right ? series.at(gap_end, var)
                                          : mean;
          for (std::size_t j = gap_begin; j < gap_end; ++j) {
            series.at(j, var) = fill;
          }
        }
        i = gap_end;
      }
      return;
    }
  }
}

}  // namespace

TimeSeries Impute(const TimeSeries& series, ImputeKind kind) {
  TimeSeries out = series;
  for (std::size_t v = 0; v < out.num_variables(); ++v) {
    ImputeColumn(out, v, kind);
  }
  return out;
}

std::size_t CountMissing(const TimeSeries& series) {
  std::size_t count = 0;
  for (std::size_t t = 0; t < series.length(); ++t) {
    for (std::size_t v = 0; v < series.num_variables(); ++v) {
      if (!Valid(series.at(t, v))) ++count;
    }
  }
  return count;
}

}  // namespace tfb::ts
