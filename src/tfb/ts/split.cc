#include "tfb/ts/split.h"

#include <cmath>

namespace tfb::ts {

Split ChronologicalSplit(const TimeSeries& series, const SplitRatio& ratio) {
  const double total = ratio.train + ratio.val + ratio.test;
  TFB_CHECK(total > 0.0);
  const std::size_t t = series.length();
  const std::size_t train_end =
      static_cast<std::size_t>(std::floor(t * ratio.train / total));
  const std::size_t val_end = static_cast<std::size_t>(
      std::floor(t * (ratio.train + ratio.val) / total));
  Split split;
  split.train = series.Slice(0, train_end);
  split.val = series.Slice(train_end, val_end);
  split.test = series.Slice(val_end, t);
  split.train_end = train_end;
  split.val_end = val_end;
  return split;
}

}  // namespace tfb::ts
