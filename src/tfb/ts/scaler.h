#ifndef TFB_TS_SCALER_H_
#define TFB_TS_SCALER_H_

#include <vector>

#include "tfb/ts/time_series.h"

namespace tfb::ts {

/// Normalization mode used by the evaluation layer. The paper reports MTSF
/// metrics "on normalized data": every method sees the series z-scored with
/// statistics computed on the *training* portion only, which is part of the
/// standardized-pipeline fairness argument (Issue 3).
enum class ScalerKind {
  kNone,
  kZScore,
  kMinMax,
};

/// Per-variable affine scaler fit on the training split and applied to the
/// whole series: y = (x - offset) / scale.
class Scaler {
 public:
  Scaler() = default;

  /// Creates a scaler of the given kind with statistics from `train`.
  static Scaler Fit(const TimeSeries& train, ScalerKind kind);

  /// Applies the transform; series must have the fitted variable count.
  TimeSeries Transform(const TimeSeries& series) const;

  /// Inverts the transform.
  TimeSeries InverseTransform(const TimeSeries& series) const;

  /// Applies the transform for a single variable to a raw vector.
  std::vector<double> TransformColumn(const std::vector<double>& x,
                                      std::size_t var) const;

  /// Inverts the transform for a single variable.
  std::vector<double> InverseTransformColumn(const std::vector<double>& x,
                                             std::size_t var) const;

  /// The configured kind.
  ScalerKind kind() const { return kind_; }

 private:
  ScalerKind kind_ = ScalerKind::kNone;
  std::vector<double> offset_;
  std::vector<double> scale_;
};

}  // namespace tfb::ts

#endif  // TFB_TS_SCALER_H_
