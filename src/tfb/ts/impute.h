#ifndef TFB_TS_IMPUTE_H_
#define TFB_TS_IMPUTE_H_

#include "tfb/ts/time_series.h"

namespace tfb::ts {

/// Missing-value policy of the data layer's standardized handling. Real
/// archives (AQShunyi, SAPFLUXNET, NN5, ...) contain gaps encoded as NaN;
/// every series entering the pipeline is repaired with one of these
/// policies first.
enum class ImputeKind {
  kLinear,       ///< Linear interpolation between valid neighbours.
  kForwardFill,  ///< Carry the last valid observation forward.
  kMean,         ///< Replace with the variable's mean of valid points.
  kZero,         ///< Replace with zero.
};

/// Returns a copy of `series` with all NaN/inf entries repaired per-variable
/// under the chosen policy. Leading gaps use the first valid value (kLinear,
/// kForwardFill); an all-invalid variable becomes all zeros.
TimeSeries Impute(const TimeSeries& series, ImputeKind kind);

/// Count of NaN/inf entries in `series`.
std::size_t CountMissing(const TimeSeries& series);

}  // namespace tfb::ts

#endif  // TFB_TS_IMPUTE_H_
