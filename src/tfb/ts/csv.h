#ifndef TFB_TS_CSV_H_
#define TFB_TS_CSV_H_

#include <optional>
#include <string>

#include "tfb/base/status.h"
#include "tfb/ts/time_series.h"

namespace tfb::ts {

/// Writes `series` as a CSV file with a header row of variable names
/// (`v0,v1,...`). The standardized on-disk format of the data layer; the
/// inverse of ReadCsv.
bool WriteCsv(const TimeSeries& series, const std::string& path);

/// Policy knobs for reading external CSVs.
struct CsvReadOptions {
  /// Accept non-finite cells (nan/inf). `true` keeps NaNs as the missing
  /// marker for the imputation path (`ts::Impute`); `false` (the strict
  /// default of the Status API) rejects them with a located error so a
  /// corrupted file cannot silently poison downstream metrics.
  bool allow_non_finite = false;
};

/// Reads a CSV file with a header row into `*out`. Non-numeric leading
/// columns (timestamps, ids) are skipped, as determined from the first data
/// row. Recoverable failures come back as INVALID_INPUT statuses naming the
/// offending line (1-based, header = line 1) and cell: ragged rows,
/// unparsable numerics in a numeric column, and — unless
/// `options.allow_non_finite` — nan/inf cells. I/O failures are INTERNAL.
base::Status ReadCsv(const std::string& path, TimeSeries* out,
                     const CsvReadOptions& options = {});

/// Convenience wrapper predating the Status channel: nullopt on any
/// failure, with non-finite cells tolerated (`allow_non_finite = true`) for
/// the impute-after-load workflow.
std::optional<TimeSeries> ReadCsv(const std::string& path);

}  // namespace tfb::ts

#endif  // TFB_TS_CSV_H_
