#ifndef TFB_TS_CSV_H_
#define TFB_TS_CSV_H_

#include <optional>
#include <string>

#include "tfb/ts/time_series.h"

namespace tfb::ts {

/// Writes `series` as a CSV file with a header row of variable names
/// (`v0,v1,...`). The standardized on-disk format of the data layer; the
/// inverse of ReadCsv.
bool WriteCsv(const TimeSeries& series, const std::string& path);

/// Reads a CSV file written by WriteCsv (or any numeric CSV with a header
/// row). Non-numeric leading columns (timestamps) are skipped. Returns
/// nullopt on I/O or parse failure.
std::optional<TimeSeries> ReadCsv(const std::string& path);

}  // namespace tfb::ts

#endif  // TFB_TS_CSV_H_
