#ifndef TFB_CHARACTERIZATION_CATCH22_H_
#define TFB_CHARACTERIZATION_CATCH22_H_

#include <array>
#include <span>
#include <string>

namespace tfb::characterization {

/// Number of canonical features (catch22, Lubba et al. 2019).
inline constexpr std::size_t kNumCatch22Features = 22;

/// Names of the 22 features, in the order Catch22() returns them. Several
/// features are faithful reimplementations of the published catch22 set
/// (histogram modes, ACF timescales, binary-stats stretches, transition-
/// matrix trace, outlier timing, spectral summaries); a few replace
/// expensive originals with close, documented analogues (see DESIGN.md).
/// The vector is used only as a fixed rich per-variable embedding for the
/// correlation characteristic (Definition 8).
const std::array<std::string, kNumCatch22Features>& Catch22FeatureNames();

/// Computes the 22-feature embedding of a univariate series. The series is
/// z-scored first (catch22 convention). Short (<8 points) or constant
/// series yield all-zero vectors.
std::array<double, kNumCatch22Features> Catch22(std::span<const double> x);

}  // namespace tfb::characterization

#endif  // TFB_CHARACTERIZATION_CATCH22_H_
