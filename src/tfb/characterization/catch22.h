#ifndef TFB_CHARACTERIZATION_CATCH22_H_
#define TFB_CHARACTERIZATION_CATCH22_H_

#include <array>
#include <span>
#include <string>

namespace tfb::characterization {

/// Number of canonical features (catch22, Lubba et al. 2019).
inline constexpr std::size_t kNumCatch22Features = 22;

/// Names of the 22 features, in the order Catch22() returns them. Several
/// features are faithful reimplementations of the published catch22 set
/// (histogram modes, ACF timescales, binary-stats stretches, transition-
/// matrix trace, outlier timing, spectral summaries); a few replace
/// expensive originals with close, documented analogues (see DESIGN.md).
/// The vector is used only as a fixed rich per-variable embedding for the
/// correlation characteristic (Definition 8).
const std::array<std::string, kNumCatch22Features>& Catch22FeatureNames();

/// Computes the 22-feature embedding of a univariate series. The series is
/// z-scored first (catch22 convention). Short (<8 points) or constant
/// series yield all-zero vectors.
///
/// This is the fused single-pass engine: one min/max sweep, one z-score,
/// one FFT-backed ACF, one periodogram, and one residual-ACF are computed
/// once and feed every dependent feature; the successive-difference
/// features (trev, pnn40, stretch counts), the two histogram modes, and
/// the two outlier-timing tails each share one fused traversal. Every
/// feature value is bit-identical to Catch22Reference below: shared
/// intermediates are produced by calling the exact same stats::/fft::
/// routines the per-feature reference calls, fused loops replicate the
/// reference expressions term for term, and this translation unit is
/// compiled with -ffp-contract=off so both implementations see one FP
/// semantics. catch22_fused_test pins the equality per feature (NaN
/// inputs propagate NaN through both — compared as bit-pattern class, not
/// by value).
std::array<double, kNumCatch22Features> Catch22(std::span<const double> x);

/// Reference implementation: every feature computed independently from
/// the raw series — its own z-score, its own ACF/periodogram, its own
/// traversals, nothing shared (the "22-pass baseline" of
/// bench_micro_kernels' catch22_fused section, and the golden oracle for
/// catch22_fused_test). Bit-identical to Catch22().
std::array<double, kNumCatch22Features> Catch22Reference(
    std::span<const double> x);

/// One feature of the reference implementation, by Catch22FeatureNames()
/// index, computed entirely from scratch. Returns 0.0 for out-of-range
/// indices, short series, and constant series (matching Catch22's
/// all-zero guard).
double Catch22Feature(std::size_t index, std::span<const double> x);

}  // namespace tfb::characterization

#endif  // TFB_CHARACTERIZATION_CATCH22_H_
