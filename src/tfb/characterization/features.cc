#include "tfb/characterization/features.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "tfb/base/check.h"
#include "tfb/characterization/adf.h"
#include "tfb/characterization/catch22.h"
#include "tfb/fft/fft.h"
#include "tfb/obs/metrics.h"
#include "tfb/parallel/thread_pool.h"
#include "tfb/stats/descriptive.h"
#include "tfb/stl/stl.h"

namespace tfb::characterization {

namespace {

std::size_t ResolvePeriod(std::span<const double> x, std::size_t period) {
  if (period > 1) return period;
  return fft::EstimatePeriod(x);
}

StlStrengths StrengthsFromStl(std::span<const double> x,
                              const stl::StlResult& d) {
  StlStrengths s;
  const std::size_t n = x.size();
  std::vector<double> detrended(n);
  std::vector<double> deseasoned(n);
  for (std::size_t i = 0; i < n; ++i) {
    detrended[i] = x[i] - d.trend[i];
    deseasoned[i] = x[i] - d.seasonal[i];
  }
  const double var_r = stats::Variance(d.remainder);
  const double var_deseason = stats::Variance(deseasoned);  // X - S
  const double var_detrend = stats::Variance(detrended);    // X - T
  s.trend = var_deseason > 1e-15
                ? std::max(0.0, 1.0 - var_r / var_deseason)
                : 0.0;
  s.seasonality = var_detrend > 1e-15
                      ? std::max(0.0, 1.0 - var_r / var_detrend)
                      : 0.0;
  return s;
}

}  // namespace

StlStrengths ComputeStlStrengths(std::span<const double> x,
                                 std::size_t period) {
  if (x.size() < 8) return {};
  const std::size_t p = ResolvePeriod(x, period);
  const stl::StlResult d = stl::StlDecompose(x, p);
  return StrengthsFromStl(x, d);
}

double TrendStrength(std::span<const double> x, std::size_t period) {
  return ComputeStlStrengths(x, period).trend;
}

double SeasonalityStrength(std::span<const double> x, std::size_t period) {
  return ComputeStlStrengths(x, period).seasonality;
}

double ShiftingValue(std::span<const double> x, int num_thresholds) {
  TFB_CHECK(num_thresholds >= 2);
  const std::size_t t = x.size();
  if (t < 4) return 0.0;
  const std::vector<double> z = stats::ZScore(x);
  const double z_min = stats::Min(z);
  const double z_max = stats::Max(z);
  if (z_max - z_min < 1e-12) return 0.0;

  // For each threshold s_i, M_i is the median *index* of points above s_i:
  // if the high values concentrate late (or early) in the series the median
  // crossing time departs from T/2, signalling a distribution shift.
  //
  // Robustness note: Algorithm 1 as printed min-max-normalizes the medians
  // vector, which for shift-free series amplifies pure jitter to [0,1] and
  // makes the statistic noise-dominated. We normalize each median by the
  // series length instead (catch22's DN_OutlierInclude "mdrmd" convention),
  // preserving the intended semantics — 0.5 = no shift, values toward 1
  // (resp. 0) = mass concentrating late (resp. early) — with stable output.
  std::vector<double> medians;
  medians.reserve(num_thresholds);
  for (int i = 0; i < num_thresholds; ++i) {
    const double threshold =
        z_min + static_cast<double>(i) * (z_max - z_min) /
                    static_cast<double>(num_thresholds);
    std::vector<double> indices;
    for (std::size_t j = 0; j < t; ++j) {
      if (z[j] > threshold) indices.push_back(static_cast<double>(j));
    }
    if (indices.size() < 2) break;
    medians.push_back(stats::Median(indices) / static_cast<double>(t - 1));
  }
  if (medians.size() < 2) return 0.0;
  return stats::Median(medians);
}

double TransitionValue(std::span<const double> x) {
  if (x.size() < 8) return 0.0;
  const std::size_t tau =
      std::max<std::size_t>(1, fft::FirstZeroAutocorrelation(x));
  std::vector<double> down;
  for (std::size_t i = 0; i < x.size(); i += tau) down.push_back(x[i]);
  const std::size_t tp = down.size();
  if (tp < 4) return 0.0;

  // Rank-based 3-symbol coarse graining (Algorithm 2's argsort step).
  std::vector<std::size_t> order(tp);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return down[a] < down[b];
  });
  std::vector<int> symbol(tp);
  for (std::size_t rank = 0; rank < tp; ++rank) {
    symbol[order[rank]] = std::min(2, static_cast<int>(3 * rank / tp));
  }

  double m[3][3] = {};
  for (std::size_t j = 0; j + 1 < tp; ++j) m[symbol[j]][symbol[j + 1]] += 1.0;
  const double total = static_cast<double>(tp - 1);
  for (auto& row : m)
    for (double& v : row) v /= total;

  double trace = 0.0;
  for (int c = 0; c < 3; ++c) {
    const double mean = (m[0][c] + m[1][c] + m[2][c]) / 3.0;
    double var = 0.0;
    for (int r = 0; r < 3; ++r) var += (m[r][c] - mean) * (m[r][c] - mean);
    trace += var / 2.0;
  }
  return trace;
}

double CorrelationValue(const ts::TimeSeries& series,
                        std::size_t max_variables) {
  const std::size_t n = std::min(series.num_variables(), max_variables);
  if (n < 2) return 0.0;
  std::vector<std::vector<double>> columns(n);
  for (std::size_t v = 0; v < n; ++v) columns[v] = series.Column(v);
  std::vector<double> pairwise;
  pairwise.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      pairwise.push_back(stats::PearsonCorrelation(columns[i], columns[j]));
    }
  }
  const double mean = stats::Mean(pairwise);
  const double var = stats::Variance(pairwise);
  return mean + 1.0 / (1.0 + var);
}

double Catch22Correlation(const ts::TimeSeries& series,
                          std::size_t max_variables) {
  const std::size_t n = std::min(series.num_variables(), max_variables);
  if (n < 2) return 0.0;
  std::vector<std::array<double, kNumCatch22Features>> embeddings(n);
  for (std::size_t v = 0; v < n; ++v) {
    embeddings[v] = Catch22(series.Column(v));
  }
  std::vector<double> pairwise;
  pairwise.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      pairwise.push_back(
          stats::PearsonCorrelation(embeddings[i], embeddings[j]));
    }
  }
  const double mean = stats::Mean(pairwise);
  const double var = stats::Variance(pairwise);
  return mean + 1.0 / (1.0 + var);
}

std::vector<double> Characteristics::ToVector5() const {
  return {trend, seasonality, stationarity_fraction, shifting, transition};
}

Characteristics Characterize(const ts::TimeSeries& series, std::size_t period,
                             std::size_t max_variables) {
  Characteristics c;
  const std::size_t n = std::min<std::size_t>(
      series.num_variables(), std::max<std::size_t>(max_variables, 1));
  if (series.length() < 8 || n == 0) return c;

  std::size_t p = period;
  if (p == 0) p = series.seasonal_period();
  if (p == 0) p = ts::DefaultSeasonalPeriod(series.frequency());

  std::size_t stationary_count = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::vector<double> col = series.Column(v);
    const StlStrengths s = ComputeStlStrengths(col, p);
    c.trend += s.trend;
    c.seasonality += s.seasonality;
    c.shifting += ShiftingValue(col);
    c.transition += TransitionValue(col);
    if (IsStationary(col)) ++stationary_count;
  }
  const double inv = 1.0 / static_cast<double>(n);
  c.trend *= inv;
  c.seasonality *= inv;
  c.shifting *= inv;
  c.transition *= inv;
  c.stationarity_fraction =
      static_cast<double>(stationary_count) / static_cast<double>(n);
  c.stationary = c.stationarity_fraction >= 0.5;
  c.correlation = CorrelationValue(series, max_variables);
  return c;
}

std::vector<Characteristics> CharacterizeBatch(
    std::span<const ts::TimeSeries> series, std::size_t period,
    std::size_t max_variables) {
  std::vector<Characteristics> out(series.size());
  if (series.empty()) return out;
  if (obs::Enabled()) {
    obs::DefaultRegistry()
        .GetCounter("tfb_characterize_batch_series_total")
        .Increment(static_cast<double>(series.size()));
  }
  // Grain 1: each series is profiled whole by one thread (series, not
  // features, are the deterministic unit of work). Nested ParallelFor
  // calls underneath (GEMM inside ADF solves, etc.) fall back to inline
  // execution via the pool's busy-CAS, so the math per series is exactly
  // the serial math.
  parallel::ThreadPool::Default().ParallelFor(
      0, series.size(), 1,
      [&series, &out, period, max_variables](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = Characterize(series[i], period, max_variables);
        }
      });
  return out;
}

std::string ToString(const Characteristics& c) {
  std::ostringstream os;
  os.precision(3);
  os << "trend=" << c.trend << " seasonality=" << c.seasonality
     << " shifting=" << c.shifting << " transition=" << c.transition
     << " correlation=" << c.correlation
     << " stationary=" << (c.stationary ? "yes" : "no") << " ("
     << c.stationarity_fraction << ")";
  return os.str();
}

}  // namespace tfb::characterization
