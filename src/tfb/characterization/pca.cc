#include "tfb/characterization/pca.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "tfb/base/check.h"
#include "tfb/linalg/solve.h"
#include "tfb/stats/rng.h"

namespace tfb::characterization {

Pca Pca::Fit(const linalg::Matrix& data) {
  Pca pca;
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  TFB_CHECK(n >= 2 && d >= 1);
  // Column moments in row-major passes: the storage is row-major, so
  // sweeping rows in the outer loop streams memory once per pass instead
  // of striding down each column d times. Per column the accumulation
  // order over rows is unchanged.
  pca.mean_.assign(d, 0.0);
  pca.scale_.assign(d, 1.0);
  std::vector<double> var(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const double* row = data.row(r);
    for (std::size_t c = 0; c < d; ++c) pca.mean_[c] += row[c];
  }
  for (std::size_t c = 0; c < d; ++c) pca.mean_[c] /= n;
  for (std::size_t r = 0; r < n; ++r) {
    const double* row = data.row(r);
    for (std::size_t c = 0; c < d; ++c) {
      const double dv = row[c] - pca.mean_[c];
      var[c] += dv * dv;
    }
  }
  for (std::size_t c = 0; c < d; ++c) {
    pca.scale_[c] = var[c] / n > 1e-15 ? std::sqrt(var[c] / n) : 1.0;
  }
  linalg::Matrix standardized(n, d);
  for (std::size_t r = 0; r < n; ++r) {
    const double* src = data.row(r);
    double* dst = standardized.row(r);
    for (std::size_t c = 0; c < d; ++c) {
      dst[c] = (src[c] - pca.mean_[c]) / pca.scale_[c];
    }
  }
  linalg::Matrix cov = linalg::MatTMul(standardized, standardized);
  cov *= 1.0 / static_cast<double>(n);
  linalg::EigenResult eig = linalg::SymmetricEigen(cov);
  pca.components_ = std::move(eig.vectors);
  double total = 0.0;
  for (double v : eig.values) total += std::max(v, 0.0);
  pca.explained_ratio_.resize(d);
  for (std::size_t i = 0; i < d; ++i) {
    pca.explained_ratio_[i] =
        total > 1e-15 ? std::max(eig.values[i], 0.0) / total : 0.0;
  }
  return pca;
}

linalg::Matrix Pca::Transform(const linalg::Matrix& data,
                              std::size_t k) const {
  TFB_CHECK(data.cols() == mean_.size());
  k = std::min(k, components_.cols());
  linalg::Matrix out(data.rows(), k);
  // r-c-j order: the standardized value is computed once per (r, c)
  // instead of once per output element, and the inner loop walks a
  // components_ row contiguously. Each out(r, j) still accumulates in
  // ascending c, so results match the j-inner form bit for bit.
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const double* src = data.row(r);
    double* orow = out.row(r);
    for (std::size_t c = 0; c < data.cols(); ++c) {
      const double z = (src[c] - mean_[c]) / scale_[c];
      const double* comp = components_.row(c);
      for (std::size_t j = 0; j < k; ++j) orow[j] += z * comp[j];
    }
  }
  return out;
}

std::vector<std::size_t> PrincipalFeatureSelect(const linalg::Matrix& data,
                                                std::size_t num_features,
                                                std::uint64_t seed) {
  const std::size_t n = data.rows();
  num_features = std::min(num_features, n);
  if (num_features == 0) return {};
  if (num_features == n) {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  const Pca pca = Pca::Fit(data);
  // Keep enough components for 90% variance (PFA's q parameter).
  std::size_t q = 0;
  double cum = 0.0;
  while (q < pca.explained_variance_ratio().size() && cum < 0.9) {
    cum += pca.explained_variance_ratio()[q];
    ++q;
  }
  q = std::max<std::size_t>(q, 1);
  const linalg::Matrix proj = pca.Transform(data, q);

  // k-means on the projected rows.
  stats::Rng rng(seed);
  std::vector<std::size_t> centers_idx;
  // k-means++ style seeding: first uniform, then farthest-point.
  centers_idx.push_back(rng.UniformInt(n));
  auto dist2 = [&](std::size_t row, const std::vector<double>& center) {
    double sum = 0.0;
    for (std::size_t c = 0; c < q; ++c) {
      const double d = proj(row, c) - center[c];
      sum += d * d;
    }
    return sum;
  };
  std::vector<std::vector<double>> centers;
  centers.push_back(proj.RowVector(centers_idx[0]));
  while (centers.size() < num_features) {
    double best_d = -1.0;
    std::size_t best_row = 0;
    for (std::size_t r = 0; r < n; ++r) {
      double nearest = std::numeric_limits<double>::infinity();
      for (const auto& c : centers) nearest = std::min(nearest, dist2(r, c));
      if (nearest > best_d) {
        best_d = nearest;
        best_row = r;
      }
    }
    centers.push_back(proj.RowVector(best_row));
  }
  std::vector<std::size_t> assignment(n, 0);
  for (int iter = 0; iter < 25; ++iter) {
    bool changed = false;
    for (std::size_t r = 0; r < n; ++r) {
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t k = 0; k < centers.size(); ++k) {
        const double d = dist2(r, centers[k]);
        if (d < best_d) {
          best_d = d;
          best = k;
        }
      }
      if (assignment[r] != best) {
        assignment[r] = best;
        changed = true;
      }
    }
    for (std::size_t k = 0; k < centers.size(); ++k) {
      std::vector<double> mean(q, 0.0);
      std::size_t count = 0;
      for (std::size_t r = 0; r < n; ++r) {
        if (assignment[r] != k) continue;
        for (std::size_t c = 0; c < q; ++c) mean[c] += proj(r, c);
        ++count;
      }
      if (count > 0) {
        for (double& m : mean) m /= static_cast<double>(count);
        centers[k] = std::move(mean);
      }
    }
    if (!changed) break;
  }
  // Representative = row nearest to each cluster centre.
  std::vector<std::size_t> selected;
  selected.reserve(centers.size());
  for (std::size_t k = 0; k < centers.size(); ++k) {
    double best_d = std::numeric_limits<double>::infinity();
    std::size_t best_row = 0;
    bool any = false;
    for (std::size_t r = 0; r < n; ++r) {
      if (assignment[r] != k) continue;
      const double d = dist2(r, centers[k]);
      if (d < best_d) {
        best_d = d;
        best_row = r;
        any = true;
      }
    }
    if (any) selected.push_back(best_row);
  }
  std::sort(selected.begin(), selected.end());
  selected.erase(std::unique(selected.begin(), selected.end()),
                 selected.end());
  return selected;
}

std::vector<std::size_t> SelectByExplainedVariance(
    const std::vector<double>& row_variances, double threshold) {
  TFB_CHECK(threshold > 0.0 && threshold <= 1.0);
  const std::size_t n = row_variances.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return row_variances[a] > row_variances[b];
  });
  double total = 0.0;
  for (double v : row_variances) total += std::max(v, 0.0);
  std::vector<std::size_t> selected;
  if (total <= 0.0) return selected;
  double cum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    selected.push_back(order[i]);
    cum += std::max(row_variances[order[i]], 0.0);
    if (cum >= threshold * total) break;
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

}  // namespace tfb::characterization
