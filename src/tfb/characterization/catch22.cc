#include "tfb/characterization/catch22.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "tfb/fft/fft.h"
#include "tfb/obs/metrics.h"
#include "tfb/stats/descriptive.h"

// This TU holds both the fused catch22 engine (Catch22) and the
// per-feature reference (Catch22Reference) and is compiled with
// -ffp-contract=off (see src/CMakeLists.txt): both implementations run
// under one FP semantics, so the fused loops below can replicate the
// reference expressions term for term and stay bit-identical. Helpers
// that consume a precomputed intermediate (an ACF, a periodogram, a
// min/max range) are shared verbatim between the two paths — the fused
// engine differs only in where the intermediate comes from.

namespace tfb::characterization {

namespace {

// Mode of a histogram with `bins` equal-width bins over [lo, hi].
double HistogramModeCore(std::span<const double> z, int bins, double lo,
                         double hi) {
  if (hi - lo < 1e-12) return lo;
  std::vector<int> counts(bins, 0);
  for (double v : z) {
    int b = static_cast<int>((v - lo) / (hi - lo) * bins);
    b = std::clamp(b, 0, bins - 1);
    ++counts[b];
  }
  const int best =
      static_cast<int>(std::max_element(counts.begin(), counts.end()) -
                       counts.begin());
  const double width = (hi - lo) / bins;
  return lo + (best + 0.5) * width;
}

double HistogramMode(std::span<const double> z, int bins) {
  return HistogramModeCore(z, bins, stats::Min(z), stats::Max(z));
}

// First lag where the ACF drops below 1/e.
double FirstAcBelow1OverE(std::span<const double> acf) {
  const double threshold = 1.0 / M_E;
  for (std::size_t k = 1; k < acf.size(); ++k) {
    if (acf[k] < threshold) return static_cast<double>(k);
  }
  return static_cast<double>(acf.size());
}

// First local minimum of the ACF.
double FirstAcMinimum(std::span<const double> acf) {
  for (std::size_t k = 1; k + 1 < acf.size(); ++k) {
    if (acf[k] < acf[k - 1] && acf[k] < acf[k + 1]) {
      return static_cast<double>(k);
    }
  }
  return static_cast<double>(acf.size());
}

// Histogram-based mutual information between x_t and x_{t+lag} with `bins`
// equal-width bins over [lo, hi] (CO_HistogramAMI analogue).
double HistogramAmiCore(std::span<const double> z, std::size_t lag, int bins,
                        double lo, double hi) {
  if (z.size() <= lag + 1) return 0.0;
  if (hi - lo < 1e-12) return 0.0;
  const std::size_t n = z.size() - lag;
  std::vector<std::vector<double>> joint(bins, std::vector<double>(bins, 0.0));
  std::vector<double> px(bins, 0.0);
  std::vector<double> py(bins, 0.0);
  auto bin_of = [&](double v) {
    int b = static_cast<int>((v - lo) / (hi - lo) * bins);
    return std::clamp(b, 0, bins - 1);
  };
  for (std::size_t i = 0; i < n; ++i) {
    const int bx = bin_of(z[i]);
    const int by = bin_of(z[i + lag]);
    joint[bx][by] += 1.0;
    px[bx] += 1.0;
    py[by] += 1.0;
  }
  double mi = 0.0;
  for (int a = 0; a < bins; ++a) {
    for (int b = 0; b < bins; ++b) {
      if (joint[a][b] <= 0.0) continue;
      const double pj = joint[a][b] / n;
      mi += pj * std::log(pj / ((px[a] / n) * (py[b] / n)));
    }
  }
  return mi;
}

double HistogramAmi(std::span<const double> z, std::size_t lag, int bins) {
  return HistogramAmiCore(z, lag, bins, stats::Min(z), stats::Max(z));
}

// Three-symbol quantile coarse-graining (SB_MotifThree / transition-matrix).
std::vector<int> QuantileSymbols3(std::span<const double> z) {
  const std::size_t n = z.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return z[a] < z[b]; });
  std::vector<int> symbol(n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    symbol[order[rank]] =
        std::min(2, static_cast<int>(3 * rank / std::max<std::size_t>(n, 1)));
  }
  return symbol;
}

// Shannon entropy of two-letter motifs on the 3-letter quantile alphabet.
double MotifThreeEntropy(std::span<const double> z) {
  if (z.size() < 2) return 0.0;
  const std::vector<int> s = QuantileSymbols3(z);
  double counts[9] = {};
  for (std::size_t i = 0; i + 1 < s.size(); ++i) {
    counts[s[i] * 3 + s[i + 1]] += 1.0;
  }
  const double total = static_cast<double>(s.size() - 1);
  double h = 0.0;
  for (double c : counts) {
    if (c <= 0.0) continue;
    const double p = c / total;
    h -= p * std::log(p);
  }
  return h;
}

// Trace of the covariance of the 3-symbol transition matrix built on the
// tau-downsampled series (SB_TransitionMatrix_3ac_sumdiagcov). Also the
// paper's Transition characteristic (Algorithm 2). `tau` is the series'
// first ACF zero crossing, floored at 1.
double TransitionMatrixTraceWithTau(std::span<const double> z,
                                    std::size_t tau) {
  std::vector<double> down;
  for (std::size_t i = 0; i < z.size(); i += tau) down.push_back(z[i]);
  if (down.size() < 4) return 0.0;
  const std::vector<int> s = QuantileSymbols3(down);
  double m[3][3] = {};
  for (std::size_t i = 0; i + 1 < s.size(); ++i) m[s[i]][s[i + 1]] += 1.0;
  const double total = static_cast<double>(s.size() - 1);
  for (auto& row : m)
    for (double& v : row) v /= total;
  // Sample covariance between the three columns; trace = sum of column
  // variances.
  double trace = 0.0;
  for (int c = 0; c < 3; ++c) {
    const double mean = (m[0][c] + m[1][c] + m[2][c]) / 3.0;
    double var = 0.0;
    for (int r = 0; r < 3; ++r) var += (m[r][c] - mean) * (m[r][c] - mean);
    trace += var / 2.0;  // n-1 = 2
  }
  return trace;
}

double TransitionMatrixTrace(std::span<const double> z) {
  if (z.size() < 6) return 0.0;
  return TransitionMatrixTraceWithTau(
      z, std::max<std::size_t>(1, fft::FirstZeroAutocorrelation(z)));
}

// Median timing of threshold-exceeding events as the threshold grows
// (DN_OutlierInclude analogue). `positive` selects the tail.
double OutlierTiming(std::span<const double> z, bool positive) {
  const std::size_t n = z.size();
  if (n < 4) return 0.0;
  std::vector<double> medians;
  for (int step = 1; step <= 10; ++step) {
    const double threshold = 0.2 * step;
    std::vector<double> times;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = positive ? z[i] : -z[i];
      if (v >= threshold) times.push_back(static_cast<double>(i) / n);
    }
    if (times.size() < 2) break;
    medians.push_back(stats::Median(times));
  }
  if (medians.empty()) return 0.0;
  return stats::Median(medians) - 0.5;
}

// Both OutlierTiming tails in one sweep per threshold step instead of
// two. Each tail keeps its own early-stop flag, so the per-tail sequence
// of event-time vectors — and therefore every median — is exactly the one
// OutlierTiming(z, tail) produces.
void OutlierTimingBoth(std::span<const double> z, double* out_pos,
                       double* out_neg) {
  const std::size_t n = z.size();
  *out_pos = 0.0;
  *out_neg = 0.0;
  if (n < 4) return;
  std::vector<double> medians_pos;
  std::vector<double> medians_neg;
  std::vector<double> times_pos;
  std::vector<double> times_neg;
  bool done_pos = false;
  bool done_neg = false;
  for (int step = 1; step <= 10 && !(done_pos && done_neg); ++step) {
    const double threshold = 0.2 * step;
    times_pos.clear();
    times_neg.clear();
    for (std::size_t i = 0; i < n; ++i) {
      const double v = z[i];
      if (!done_pos && v >= threshold)
        times_pos.push_back(static_cast<double>(i) / n);
      if (!done_neg && -v >= threshold)
        times_neg.push_back(static_cast<double>(i) / n);
    }
    if (!done_pos) {
      if (times_pos.size() < 2) {
        done_pos = true;
      } else {
        medians_pos.push_back(stats::Median(times_pos));
      }
    }
    if (!done_neg) {
      if (times_neg.size() < 2) {
        done_neg = true;
      } else {
        medians_neg.push_back(stats::Median(times_neg));
      }
    }
  }
  if (!medians_pos.empty()) *out_pos = stats::Median(medians_pos) - 0.5;
  if (!medians_neg.empty()) *out_neg = stats::Median(medians_neg) - 0.5;
}

// Power concentrated in the lowest fifth of the spectrum
// (SP_Summaries_welch_rect_area_5_1 analogue). `power` is Periodogram(z).
double LowFrequencyPowerFraction(std::span<const double> power) {
  if (power.size() < 5) return 0.0;
  double total = 0.0;
  for (std::size_t k = 1; k < power.size(); ++k) total += power[k];
  if (total < 1e-15) return 0.0;
  double low = 0.0;
  for (std::size_t k = 1; k < power.size() / 5 + 1 && k < power.size(); ++k) {
    low += power[k];
  }
  return low / total;
}

// Spectral centroid (SP_Summaries_welch_rect_centroid analogue). `power`
// is Periodogram(z).
double SpectralCentroid(std::span<const double> power) {
  double total = 0.0;
  double weighted = 0.0;
  for (std::size_t k = 1; k < power.size(); ++k) {
    total += power[k];
    weighted += power[k] * static_cast<double>(k) / power.size();
  }
  return total > 1e-15 ? weighted / total : 0.0;
}

// Residual std of forecasting each point by the mean of the `w` previous
// points (FC_LocalSimple_mean analogue).
double LocalSimpleMeanStderr(std::span<const double> z, std::size_t w) {
  if (z.size() <= w) return 0.0;
  std::vector<double> res;
  res.reserve(z.size() - w);
  for (std::size_t i = w; i < z.size(); ++i) {
    double mean = 0.0;
    for (std::size_t j = 1; j <= w; ++j) mean += z[i - j];
    mean /= static_cast<double>(w);
    res.push_back(z[i] - mean);
  }
  return stats::StdDev(res);
}

// First-zero ACF of local-mean forecast residuals over first-zero ACF of
// the series (FC_LocalSimple_mean1_tauresrat).
double LocalSimpleTauResRat(std::span<const double> z) {
  if (z.size() < 4) return 1.0;
  std::vector<double> res(z.size() - 1);
  for (std::size_t i = 1; i < z.size(); ++i) res[i - 1] = z[i] - z[i - 1];
  const double tau_res =
      static_cast<double>(fft::FirstZeroAutocorrelation(res));
  const double tau =
      static_cast<double>(fft::FirstZeroAutocorrelation(z));
  return tau > 0.0 ? tau_res / tau : 1.0;
}

// First minimum of the Gaussian auto-mutual-information
// (IN_AutoMutualInfoStats_40_gaussian_fmmi): ami(k) = -0.5*log(1 - acf_k^2).
double FirstMinGaussianAmi(std::span<const double> acf) {
  std::vector<double> ami;
  const std::size_t kmax = std::min<std::size_t>(acf.size(), 41);
  for (std::size_t k = 1; k < kmax; ++k) {
    const double r2 = std::min(acf[k] * acf[k], 1.0 - 1e-12);
    ami.push_back(-0.5 * std::log(1.0 - r2));
  }
  for (std::size_t k = 1; k + 1 < ami.size(); ++k) {
    if (ami[k] < ami[k - 1] && ami[k] < ami[k + 1]) {
      return static_cast<double>(k + 1);
    }
  }
  return static_cast<double>(ami.size());
}

// Periodicity detector (PD_PeriodicityWang analogue): dominant period.
double PeriodicityWang(std::span<const double> z) {
  return static_cast<double>(fft::EstimatePeriod(z));
}

// Fluctuation-analysis scaling proxy (SC_FluctAnal analogue): slope of
// log(fluctuation) vs log(window) for detrended cumulative sums.
double FluctuationScaling(std::span<const double> z) {
  const std::size_t n = z.size();
  if (n < 16) return 0.0;
  std::vector<double> cumsum(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += z[i];
    cumsum[i] = acc;
  }
  std::vector<double> log_w;
  std::vector<double> log_f;
  for (std::size_t w = 4; w <= n / 4; w = static_cast<std::size_t>(w * 1.5) + 1) {
    double fluct = 0.0;
    std::size_t count = 0;
    for (std::size_t start = 0; start + w <= n; start += w) {
      // Linear detrend of the window, RMS residual.
      double sx = 0, sy = 0, sxx = 0, sxy = 0;
      for (std::size_t i = 0; i < w; ++i) {
        sx += i;
        sy += cumsum[start + i];
        sxx += static_cast<double>(i) * i;
        sxy += i * cumsum[start + i];
      }
      const double denom = w * sxx - sx * sx;
      const double slope = denom > 1e-12 ? (w * sxy - sx * sy) / denom : 0.0;
      const double intercept = (sy - slope * sx) / w;
      double rss = 0.0;
      for (std::size_t i = 0; i < w; ++i) {
        const double e = cumsum[start + i] - (intercept + slope * i);
        rss += e * e;
      }
      fluct += std::sqrt(rss / w);
      ++count;
    }
    if (count == 0) continue;
    log_w.push_back(std::log(static_cast<double>(w)));
    log_f.push_back(std::log(std::max(fluct / count, 1e-12)));
  }
  if (log_w.size() < 2) return 0.0;
  // OLS slope.
  const double mx = stats::Mean(log_w);
  const double my = stats::Mean(log_f);
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < log_w.size(); ++i) {
    sxx += (log_w[i] - mx) * (log_w[i] - mx);
    sxy += (log_w[i] - mx) * (log_f[i] - my);
  }
  return sxx > 1e-12 ? sxy / sxx : 0.0;
}

// One fused traversal for every successive-difference feature plus the
// above-mean stretch: trev (cubed differences), pnn40, the two
// longest-stretch counts, and the residual/difference vector the
// tauresrat feature needs. Each statistic updates with the exact
// expression of the standalone loop it replaced.
void FusedDiffSweep(std::span<const double> z, double* trev, double* pnn40,
                    double* stretch_above, double* stretch_dec,
                    std::vector<double>* res) {
  const std::size_t n = z.size();
  res->assign(n > 0 ? n - 1 : 0, 0.0);
  double sum = 0.0;
  std::size_t count = 0;
  std::size_t run_above = 0;
  std::size_t best_above = 0;
  std::size_t run_dec = 0;
  std::size_t best_dec = 0;
  for (std::size_t i = 0; i < n; ++i) {
    run_above = z[i] > 0.0 ? run_above + 1 : 0;
    best_above = std::max(best_above, run_above);
    if (i + 1 < n) {
      const double d = z[i + 1] - z[i];
      (*res)[i] = d;
      sum += d * d * d;
      if (std::fabs(d) > 0.04) ++count;
      run_dec = z[i + 1] < z[i] ? run_dec + 1 : 0;
      best_dec = std::max(best_dec, run_dec);
    }
  }
  *trev = n > 1 ? sum / static_cast<double>(n - 1) : 0.0;
  *pnn40 =
      n > 1 ? static_cast<double>(count) / static_cast<double>(n - 1) : 0.0;
  *stretch_above = static_cast<double>(best_above);
  *stretch_dec = static_cast<double>(best_dec);
}

// Two histogram modes (5 and 10 bins) over the shared [lo, hi] range in
// one pass: both bin indices come from the same expression the standalone
// HistogramModeCore uses.
void FusedHistogramModes(std::span<const double> z, double lo, double hi,
                         double* mode5, double* mode10) {
  if (hi - lo < 1e-12) {
    *mode5 = lo;
    *mode10 = lo;
    return;
  }
  int c5[5] = {};
  int c10[10] = {};
  for (double v : z) {
    int b5 = static_cast<int>((v - lo) / (hi - lo) * 5);
    b5 = std::clamp(b5, 0, 4);
    ++c5[b5];
    int b10 = static_cast<int>((v - lo) / (hi - lo) * 10);
    b10 = std::clamp(b10, 0, 9);
    ++c10[b10];
  }
  const int best5 = static_cast<int>(std::max_element(c5, c5 + 5) - c5);
  const int best10 = static_cast<int>(std::max_element(c10, c10 + 10) - c10);
  const double width5 = (hi - lo) / 5;
  const double width10 = (hi - lo) / 10;
  *mode5 = lo + (best5 + 0.5) * width5;
  *mode10 = lo + (best10 + 0.5) * width10;
}

// Min and max in one sweep. Pure comparisons (std::min/std::max element
// by element in the same order), so identical to stats::Min + stats::Max,
// including the NaN-skipping behaviour of both.
void FusedMinMax(std::span<const double> z, double* lo, double* hi) {
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (double v : z) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  *lo = mn;
  *hi = mx;
}

void RecordFusedCall() {
  if (!obs::Enabled()) return;
  obs::DefaultRegistry().GetCounter("tfb_catch22_fused_calls").Increment();
}

}  // namespace

const std::array<std::string, kNumCatch22Features>& Catch22FeatureNames() {
  static const std::array<std::string, kNumCatch22Features> kNames = {
      "DN_HistogramMode_5",
      "DN_HistogramMode_10",
      "CO_f1ecac",
      "CO_FirstMin_ac",
      "CO_HistogramAMI_even_2_5",
      "CO_trev_1_num",
      "MD_hrv_classic_pnn40",
      "SB_BinaryStats_mean_longstretch1",
      "SB_BinaryStats_diff_longstretch0",
      "SB_MotifThree_quantile_hh",
      "SB_TransitionMatrix_3ac_sumdiagcov",
      "DN_OutlierInclude_p_001_mdrmd",
      "DN_OutlierInclude_n_001_mdrmd",
      "SP_Summaries_welch_rect_area_5_1",
      "SP_Summaries_welch_rect_centroid",
      "FC_LocalSimple_mean1_tauresrat",
      "FC_LocalSimple_mean3_stderr",
      "IN_AutoMutualInfoStats_40_gaussian_fmmi",
      "PD_PeriodicityWang_th0_01",
      "SC_FluctAnal_scaling",
      "DN_Moments_skewness",
      "DN_Moments_kurtosis",
  };
  return kNames;
}

std::array<double, kNumCatch22Features> Catch22(std::span<const double> x) {
  std::array<double, kNumCatch22Features> f{};
  if (x.size() < 8) return f;
  const std::vector<double> z = stats::ZScore(x);
  if (stats::Variance(z) < 1e-15) return f;
  RecordFusedCall();
  const std::size_t n = z.size();

  // Shared intermediates — computed once, through the exact routines the
  // per-feature reference calls on the same inputs:
  //   min/max          → histogram modes, histogram AMI
  //   ACF(z)           → f1ecac, first AC minimum, Gaussian AMI, the
  //                      transition-matrix tau, tauresrat's denominator,
  //                      and period refinement
  //   periodogram(z)   → low-frequency power, spectral centroid, period
  //                      candidate
  //   diff sweep       → trev, pnn40, stretch counts, the residual series
  //   ACF(diff)        → tauresrat's numerator
  double lo = 0.0;
  double hi = 0.0;
  FusedMinMax(z, &lo, &hi);
  const std::vector<double> acf = fft::AutocorrelationFft(z);
  const std::vector<double> power = fft::Periodogram(z);
  std::vector<double> res;

  FusedHistogramModes(z, lo, hi, &f[0], &f[1]);
  f[2] = FirstAcBelow1OverE(acf);
  f[3] = FirstAcMinimum(acf);
  f[4] = HistogramAmiCore(z, /*lag=*/2, /*bins=*/5, lo, hi);
  FusedDiffSweep(z, &f[5], &f[6], &f[7], &f[8], &res);
  f[9] = MotifThreeEntropy(z);
  f[10] = n < 6 ? 0.0
                : TransitionMatrixTraceWithTau(
                      z, std::max<std::size_t>(1, fft::FirstZeroFromAcf(acf)));
  OutlierTimingBoth(z, &f[11], &f[12]);
  f[13] = LowFrequencyPowerFraction(power);
  f[14] = SpectralCentroid(power);
  // tauresrat: the numerator needs the ACF of the difference series (its
  // own FFT — the one per-feature transform that cannot be shared); the
  // denominator reuses the shared ACF.
  if (n < 4) {
    f[15] = 1.0;
  } else {
    const double tau_res =
        static_cast<double>(fft::FirstZeroAutocorrelation(res));
    const double tau = static_cast<double>(fft::FirstZeroFromAcf(acf));
    f[15] = tau > 0.0 ? tau_res / tau : 1.0;
  }
  f[16] = LocalSimpleMeanStderr(z, 3);
  f[17] = FirstMinGaussianAmi(acf);
  f[18] = static_cast<double>(fft::EstimatePeriodFromSpectrum(n, power, acf));
  f[19] = FluctuationScaling(z);
  f[20] = stats::Skewness(z);
  f[21] = stats::Kurtosis(z);
  return f;
}

double Catch22Feature(std::size_t index, std::span<const double> x) {
  if (index >= kNumCatch22Features) return 0.0;
  if (x.size() < 8) return 0.0;
  const std::vector<double> z = stats::ZScore(x);
  if (stats::Variance(z) < 1e-15) return 0.0;
  switch (index) {
    case 0:
      return HistogramMode(z, 5);
    case 1:
      return HistogramMode(z, 10);
    case 2:
      return FirstAcBelow1OverE(fft::AutocorrelationFft(z));
    case 3:
      return FirstAcMinimum(fft::AutocorrelationFft(z));
    case 4:
      return HistogramAmi(z, /*lag=*/2, /*bins=*/5);
    case 5: {
      // CO_trev_1_num: mean cubed successive difference (time
      // reversibility).
      double sum = 0.0;
      for (std::size_t i = 0; i + 1 < z.size(); ++i) {
        const double d = z[i + 1] - z[i];
        sum += d * d * d;
      }
      return sum / static_cast<double>(z.size() - 1);
    }
    case 6: {
      // pnn40: fraction of successive differences exceeding 0.04
      // (z-units).
      std::size_t count = 0;
      for (std::size_t i = 0; i + 1 < z.size(); ++i) {
        if (std::fabs(z[i + 1] - z[i]) > 0.04) ++count;
      }
      return static_cast<double>(count) / static_cast<double>(z.size() - 1);
    }
    case 7: {
      // Longest stretch above the mean (mean of z-scored series is 0).
      std::size_t best = 0;
      std::size_t run = 0;
      for (std::size_t i = 0; i < z.size(); ++i) {
        run = z[i] > 0.0 ? run + 1 : 0;
        best = std::max(best, run);
      }
      return static_cast<double>(best);
    }
    case 8: {
      // Longest stretch of consecutive decreases.
      std::size_t best = 0;
      std::size_t run = 0;
      for (std::size_t i = 0; i + 1 < z.size(); ++i) {
        run = z[i + 1] < z[i] ? run + 1 : 0;
        best = std::max(best, run);
      }
      return static_cast<double>(best);
    }
    case 9:
      return MotifThreeEntropy(z);
    case 10:
      return TransitionMatrixTrace(z);
    case 11:
      return OutlierTiming(z, /*positive=*/true);
    case 12:
      return OutlierTiming(z, /*positive=*/false);
    case 13:
      return LowFrequencyPowerFraction(fft::Periodogram(z));
    case 14:
      return SpectralCentroid(fft::Periodogram(z));
    case 15:
      return LocalSimpleTauResRat(z);
    case 16:
      return LocalSimpleMeanStderr(z, 3);
    case 17:
      return FirstMinGaussianAmi(fft::AutocorrelationFft(z));
    case 18:
      return PeriodicityWang(z);
    case 19:
      return FluctuationScaling(z);
    case 20:
      return stats::Skewness(z);
    case 21:
      return stats::Kurtosis(z);
    default:
      return 0.0;
  }
}

std::array<double, kNumCatch22Features> Catch22Reference(
    std::span<const double> x) {
  std::array<double, kNumCatch22Features> f{};
  for (std::size_t i = 0; i < kNumCatch22Features; ++i) {
    f[i] = Catch22Feature(i, x);
  }
  return f;
}

}  // namespace tfb::characterization
