#ifndef TFB_CHARACTERIZATION_PCA_H_
#define TFB_CHARACTERIZATION_PCA_H_

#include <cstdint>
#include <vector>

#include "tfb/linalg/matrix.h"

namespace tfb::characterization {

/// Principal component analysis of a (samples x features) matrix, used to
/// project the 5-D characteristic vectors of univariate series to 2-D for
/// the Figure 5 coverage maps, and as the first stage of PFA.
class Pca {
 public:
  /// Fits on `data` (rows = samples). Columns are centered and scaled to
  /// unit variance before the eigen-decomposition (correlation PCA), which
  /// is the right choice for mixed-unit characteristic vectors.
  static Pca Fit(const linalg::Matrix& data);

  /// Projects `data` (same feature count) onto the first `k` components.
  linalg::Matrix Transform(const linalg::Matrix& data, std::size_t k) const;

  /// Explained-variance ratio per component, descending.
  const std::vector<double>& explained_variance_ratio() const {
    return explained_ratio_;
  }

  /// Principal axes: column i is component i in feature space.
  const linalg::Matrix& components() const { return components_; }

 private:
  std::vector<double> mean_;
  std::vector<double> scale_;
  std::vector<double> explained_ratio_;
  linalg::Matrix components_;
};

/// Principal Feature Analysis (Lu et al. 2007): picks `num_features`
/// representative rows of `data` by clustering the rows' loadings in the
/// leading principal subspace (k-means) and returning the row closest to
/// each cluster centre. TFB uses this to curate a heterogeneous univariate
/// collection from a larger pool (Section 4.1.1).
std::vector<std::size_t> PrincipalFeatureSelect(const linalg::Matrix& data,
                                                std::size_t num_features,
                                                std::uint64_t seed = 42);

/// TFB's explained-variance curation rule: returns the smallest set of row
/// indices (by descending variance contribution) whose summed variance
/// reaches `threshold` (default 0.9) of the total variance across rows.
std::vector<std::size_t> SelectByExplainedVariance(
    const std::vector<double>& row_variances, double threshold = 0.9);

}  // namespace tfb::characterization

#endif  // TFB_CHARACTERIZATION_PCA_H_
