#include "tfb/characterization/adf.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "tfb/base/check.h"
#include "tfb/linalg/matrix.h"
#include "tfb/linalg/solve.h"

namespace tfb::characterization {

namespace {

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

// MacKinnon (1994) approximate p-value for the constant-only ADF statistic.
// Coefficients match statsmodels' `mackinnonp` for regression="c", N=1.
double MacKinnonPValue(double tau) {
  constexpr double kTauMax = 2.74;
  constexpr double kTauMin = -18.83;
  constexpr double kTauStar = -1.61;
  if (tau > kTauMax) return 1.0;
  if (tau < kTauMin) return 0.0;
  double poly;
  if (tau <= kTauStar) {
    // small-p branch: 2.1659 + 1.4412*tau + 0.038269*tau^2
    poly = 2.1659 + 1.4412 * tau + 0.038269 * tau * tau;
  } else {
    // large-p branch: 1.7339 + 0.93202*tau - 0.12745*tau^2 - 0.010368*tau^3
    poly = 1.7339 + tau * (0.93202 + tau * (-0.12745 + tau * -0.010368));
  }
  return NormalCdf(poly);
}

struct OlsFit {
  std::vector<double> beta;
  double sigma2 = 0.0;     // residual variance (ML, divide by n)
  double se_first = 0.0;   // standard error of beta[0]
  double loglike = 0.0;
  std::size_t nobs = 0;
  bool ok = false;
};

// OLS of y on X where column 0 is the lagged level; returns the standard
// error of that coefficient for the ADF t-statistic.
OlsFit FitAdfRegression(const linalg::Matrix& x, const linalg::Vector& y) {
  OlsFit fit;
  fit.nobs = y.size();
  linalg::Matrix xtx = linalg::MatTMul(x, x);
  auto inv = linalg::Inverse(xtx);
  if (!inv) return fit;
  linalg::Vector xty(x.cols(), 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) xty[c] += x(r, c) * y[r];
  }
  fit.beta = linalg::MatVec(*inv, xty);
  double rss = 0.0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    double pred = 0.0;
    for (std::size_t c = 0; c < x.cols(); ++c) pred += x(r, c) * fit.beta[c];
    const double e = y[r] - pred;
    rss += e * e;
  }
  const std::size_t n = y.size();
  const std::size_t k = x.cols();
  if (n <= k) return fit;
  const double sigma2_ols = rss / static_cast<double>(n - k);
  fit.sigma2 = rss / static_cast<double>(n);
  fit.se_first = std::sqrt(std::max(0.0, sigma2_ols * (*inv)(0, 0)));
  // Gaussian log-likelihood for AIC-based lag selection.
  fit.loglike = -0.5 * static_cast<double>(n) *
                (std::log(2.0 * M_PI * std::max(fit.sigma2, 1e-300)) + 1.0);
  fit.ok = fit.se_first > 0.0;
  return fit;
}

}  // namespace

AdfResult AdfTest(std::span<const double> y, int max_lags) {
  AdfResult result;
  const std::size_t t = y.size();
  if (t < 10) return result;

  if (max_lags < 0) {
    max_lags = static_cast<int>(
        std::floor(12.0 * std::pow(static_cast<double>(t) / 100.0, 0.25)));
  }
  max_lags = std::clamp(max_lags, 0, static_cast<int>(t) / 2 - 2);

  std::vector<double> diff(t - 1);
  for (std::size_t i = 0; i + 1 < t; ++i) diff[i] = y[i + 1] - y[i];

  // All candidate lag orders share the same effective sample (aligned to the
  // largest lag) so AIC values are comparable.
  const std::size_t start = static_cast<std::size_t>(max_lags);
  const std::size_t nobs = diff.size() - start;
  if (nobs < 8) return result;

  double best_aic = std::numeric_limits<double>::infinity();
  AdfResult best;
  for (int p = 0; p <= max_lags; ++p) {
    const std::size_t k = 2 + static_cast<std::size_t>(p);
    linalg::Matrix x(nobs, k);
    linalg::Vector target(nobs);
    for (std::size_t i = 0; i < nobs; ++i) {
      const std::size_t idx = start + i;  // index into diff
      target[i] = diff[idx];
      x(i, 0) = y[idx];  // lagged level y_{t-1}
      x(i, 1) = 1.0;     // constant
      for (int j = 0; j < p; ++j) {
        x(i, 2 + j) = diff[idx - 1 - j];
      }
    }
    const OlsFit fit = FitAdfRegression(x, target);
    if (!fit.ok) continue;
    const double aic =
        -2.0 * fit.loglike + 2.0 * static_cast<double>(k);
    if (aic < best_aic) {
      best_aic = aic;
      best.statistic = fit.beta[0] / fit.se_first;
      best.lags = p;
    }
  }
  if (!std::isfinite(best_aic)) return result;
  best.p_value = MacKinnonPValue(best.statistic);
  return best;
}

bool IsStationary(std::span<const double> y) {
  return AdfTest(y).p_value <= 0.05;
}

}  // namespace tfb::characterization
