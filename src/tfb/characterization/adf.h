#ifndef TFB_CHARACTERIZATION_ADF_H_
#define TFB_CHARACTERIZATION_ADF_H_

#include <span>

namespace tfb::characterization {

/// Result of an Augmented Dickey–Fuller unit-root test.
struct AdfResult {
  double statistic = 0.0;  ///< t-statistic on the lagged-level coefficient.
  double p_value = 1.0;    ///< MacKinnon (1994) approximate p-value.
  int lags = 0;            ///< Number of lagged differences included.
};

/// Augmented Dickey–Fuller test with a constant term:
///   dy_t = alpha + gamma * y_{t-1} + sum_i delta_i * dy_{t-i} + e_t.
/// The lag order is chosen by AIC over 0..max_lags, with max_lags defaulting
/// to Schwert's rule 12*(T/100)^{1/4} when negative. The p-value uses the
/// MacKinnon regression-surface approximation (same as statsmodels), so the
/// paper's "stationary iff p <= 0.05" rule (Equation 3) carries over exactly.
AdfResult AdfTest(std::span<const double> y, int max_lags = -1);

/// The paper's stationarity characteristic (Definition 5):
/// true iff the ADF p-value is <= 0.05.
bool IsStationary(std::span<const double> y);

}  // namespace tfb::characterization

#endif  // TFB_CHARACTERIZATION_ADF_H_
