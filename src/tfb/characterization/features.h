#ifndef TFB_CHARACTERIZATION_FEATURES_H_
#define TFB_CHARACTERIZATION_FEATURES_H_

#include <span>
#include <string>
#include <vector>

#include "tfb/ts/time_series.h"

namespace tfb::characterization {

/// Trend strength (Definition 3): max(0, 1 - var(R)/var(X - S)) from an STL
/// decomposition X = T + S + R at the given period (0 = auto-detect).
double TrendStrength(std::span<const double> x, std::size_t period = 0);

/// Seasonality strength (Definition 4): max(0, 1 - var(R)/var(X - T)).
double SeasonalityStrength(std::span<const double> x, std::size_t period = 0);

/// Shifting value (Definition 6, Algorithm 1): distribution-shift indicator
/// in (0,1) computed from the median crossing-time of m = `num_thresholds`
/// level sets of the z-scored series. 0.5 means no shift; values toward 1
/// (resp. 0) mean the distribution's mass moves late (resp. early) — i.e.
/// an upward (downward) level shift. |value - 0.5| measures severity (see
/// the robustness note in the implementation). 0 for constant series.
double ShiftingValue(std::span<const double> x, int num_thresholds = 100);

/// Transition value (Definition 7, Algorithm 2): trace of the covariance of
/// the 3-symbol transition matrix on the ACF-downsampled series; in
/// [0, 1/3).
double TransitionValue(std::span<const double> x);

/// Correlation for a multivariate series, aggregated with Definition 8's
/// formula mean(P) + 1/(1+var(P)) over all variable pairs. P here is the
/// Pearson correlation between the variables' value series: on synthetic
/// data with homogeneous channels, the paper's catch22-embedding Pearson
/// (available below) saturates near its maximum regardless of actual
/// dependence, while value-level correlation tracks it faithfully (see
/// DESIGN.md). Returns 0 for univariate input.
double CorrelationValue(const ts::TimeSeries& series,
                        std::size_t max_variables = 64);

/// Definition 8 exactly as printed: Pearson between per-variable catch22
/// embeddings, aggregated with mean(P) + 1/(1+var(P)).
double Catch22Correlation(const ts::TimeSeries& series,
                          std::size_t max_variables = 64);

/// Both STL-based strengths from one decomposition (cheaper than calling
/// TrendStrength and SeasonalityStrength separately).
struct StlStrengths {
  double trend = 0.0;
  double seasonality = 0.0;
};
StlStrengths ComputeStlStrengths(std::span<const double> x,
                                 std::size_t period = 0);

/// The paper's six-characteristic profile of a dataset (Figures 1, 3, 8).
/// For multivariate series the univariate characteristics are averaged over
/// (a capped number of) variables.
struct Characteristics {
  double trend = 0.0;
  double seasonality = 0.0;
  double shifting = 0.0;
  double transition = 0.0;
  double correlation = 0.0;
  double stationarity_fraction = 0.0;  ///< Fraction of stationary variables.
  bool stationary = false;             ///< Majority-vote stationarity.

  /// Returns {trend, seasonality, stationarity_fraction, shifting,
  /// transition} — the 5-D vector used for PCA coverage maps (Figure 5).
  std::vector<double> ToVector5() const;
};

/// Computes the full profile. `period` 0 = use the series' declared or
/// frequency-default seasonal period, falling back to detection.
/// `max_variables` caps per-variable work on very wide datasets.
Characteristics Characterize(const ts::TimeSeries& series,
                             std::size_t period = 0,
                             std::size_t max_variables = 16);

/// Characterize() over a whole collection, parallelized across series on
/// the process thread pool (characterization is O(series × variables) and
/// fronts every dataset-scale scenario). Each series is profiled whole by
/// one thread under the pool's deterministic static partition, so
/// out[i] is byte-identical to Characterize(series[i], ...) at any thread
/// count.
std::vector<Characteristics> CharacterizeBatch(
    std::span<const ts::TimeSeries> series, std::size_t period = 0,
    std::size_t max_variables = 16);

/// Pretty one-line summary for logs.
std::string ToString(const Characteristics& c);

}  // namespace tfb::characterization

#endif  // TFB_CHARACTERIZATION_FEATURES_H_
