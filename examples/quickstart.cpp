// Quickstart: the whole tfb-cpp pipeline in one page.
//
//   1. get a dataset (here: the synthetic ETTh1 profile from the registry),
//   2. characterize it,
//   3. evaluate a few forecasters with the rolling strategy,
//   4. print a report.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "tfb/tfb.h"

int main() {
  using namespace tfb;

  // 1. Data layer: generate the ETTh1 stand-in (deterministic in the seed).
  auto profile = *datagen::FindProfile("ETTh1");
  profile.length = 1200;
  profile.spec.factor_spec.length = 1200;
  const ts::TimeSeries series = datagen::GenerateDataset(profile, /*seed=*/7);
  std::printf("dataset %s: %zu points x %zu variables (%s, %s)\n",
              series.name().c_str(), series.length(), series.num_variables(),
              ts::FrequencyName(series.frequency()).c_str(),
              ts::DomainName(series.domain()).c_str());

  // 2. Characterization layer: the paper's six characteristics.
  const auto c = characterization::Characterize(series, 0, 4);
  std::printf("characteristics: %s\n\n", characterization::ToString(c).c_str());

  // 3. Method + evaluation layers: one method per paradigm, horizon 24,
  //    rolling strategy with the dataset's 6:2:2 split, metrics on
  //    z-score-normalized data — the paper's exact protocol.
  std::vector<pipeline::BenchmarkTask> tasks;
  for (const char* method :
       {"SeasonalNaive", "ETS", "VAR", "LinearRegression", "NLinear",
        "PatchAttention"}) {
    pipeline::BenchmarkTask task;
    task.dataset = series.name();
    task.series = series;
    task.method = method;
    task.horizon = 24;
    task.params.train_epochs = 15;
    task.rolling.split = profile.split;
    task.rolling.max_windows = 5;
    task.rolling.metrics = {eval::Metric::kMae, eval::Metric::kMse,
                            eval::Metric::kSmape};
    tasks.push_back(std::move(task));
  }
  const auto rows = pipeline::BenchmarkRunner().Run(tasks);

  // 4. Reporting layer.
  report::PrintTable(std::cout, rows,
                     {eval::Metric::kMae, eval::Metric::kMse,
                      eval::Metric::kSmape});
  const auto wins = report::CountWins(rows, eval::Metric::kMae);
  for (const auto& [method, count] : wins) {
    std::printf("\nbest method by MAE: %s\n", method.c_str());
    (void)count;
  }
  return 0;
}
