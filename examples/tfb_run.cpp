// tfb_run: the automated end-to-end pipeline as a command-line tool
// (Section 4.4: "users only need to deploy their method ... and choose or
// configure the configuration file, then TFB can automatically run the
// pipeline").
//
// Usage:
//   ./build/examples/tfb_run my_run.conf            # run a config file
//   ./build/examples/tfb_run my_run.conf --resume   # skip journaled tasks
//   ./build/examples/tfb_run my_run.conf --isolate=process  # sandbox tasks
//   ./build/examples/tfb_run --print-default        # show default config
//   ./build/examples/tfb_run                        # run a small demo
//
// Fault isolation (see the "Failure semantics" section of DESIGN.md): the
// config keys `deadline_seconds`, `max_retries`, `retry_backoff_ms`,
// `fallback`, and `journal` bound each task's budget, retry transient
// failures with exponential backoff, keep the table complete with a
// fallback forecaster, and journal finished rows as JSONL. With a `journal`
// configured, `--resume` continues an interrupted grid, executing only the
// cells the journal does not cover.
//
// Process isolation (`--isolate=process`, or `isolation = process` in the
// config): every task runs in a fork()ed child under the configured
// `memory_limit_mb` / `cpu_limit_seconds` resource limits. A method that
// segfaults, aborts, allocates without bound, or hangs is killed and
// classified (crash / oom / timeout / abort) in the journal and the
// report's failure footer; the rest of the grid is untouched.
// `--isolate=in_process` forces the threaded mode over the config.
//
// Observability (see the "Observability" section of DESIGN.md):
// `--trace-out=run.trace.json` (config key `trace_out`) captures runner /
// sandbox / trainer / eval spans as Chrome trace_event JSON — load it in
// chrome://tracing or https://ui.perfetto.dev. `--metrics-out=run.prom`
// (config key `metrics_out`) dumps the metrics registry as Prometheus
// text, or JSON when the path ends in ".json". Either flag turns
// collection on; without them the instrumented paths stay disabled and
// effectively free. Resource accounting (per-task CPU seconds; peak RSS
// under process isolation) always lands on the rows, the CSV, and the
// performance summary printed after the result table.
//
// Sharded multi-process execution (see the "Sharded execution" section of
// DESIGN.md): `--workers=N` (config key `workers`) runs the grid across N
// fork()ed worker processes under a crash-tolerant coordinator — a worker
// that dies mid-shard is replaced and its unfinished tasks re-dispatched; a
// task that repeatedly kills its worker is quarantined with a CRASHED row.
// Each worker journals to its own segment; the coordinator merges segments
// into the main journal at the end, so `--resume` recovers from any
// coordinator/worker crash combination. `--chaos-kill-worker=K` makes the
// worker with spawn index K kill itself after its first completed task
// (recovery drills, CI smoke).
//
// TCP transport (see the "Transport" section of DESIGN.md):
// `--transport=tcp` moves the coordinator<->worker protocol onto framed,
// CRC-checked TCP connections. By default the coordinator still forks its
// workers (they connect over loopback); with `--external-workers` it only
// listens on `--listen=HOST:PORT` and `tfb_worker --connect=HOST:PORT`
// processes — on this or any other host — supply the compute. A worker
// connection that drops is re-queued for free and the worker reconnects
// with backoff; stale results from a superseded connection are fenced by
// lease epoch. `--chaos-net=drop,corrupt,short,delay,partition` injects
// deterministic, seeded network faults into worker send paths (CI chaos
// smoke); see pipeline::ParseFaultPlan for the spec grammar.
//
// Live telemetry:
//   --serve=9100        embedded HTTP endpoint for the duration of the run:
//                       curl localhost:9100/status   (JSON progress + ETA)
//                       curl localhost:9100/metrics  (Prometheus text)
//                       curl localhost:9100/healthz  (liveness)
//   --progress=MODE     terminal progress: auto (default; TTY bar, else
//                       heartbeat lines), bar, plain, off
//   --log-level=LEVEL   trace|debug|info|warn|error|off (default info)
//   --log-json=FILE     mirror every log line as JSONL to FILE
//
// Emits the result table to stdout and tfb_results.csv to the working
// directory.

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <ctime>
#include <iostream>

#include "tfb/linalg/gemm.h"
#include "tfb/pipeline/config.h"
#include "tfb/pipeline/shard.h"
#include "tfb/report/ascii_plot.h"
#include "tfb/tfb.h"

namespace {

/// "tfb-20260806T101112-12345": unique enough to tell two runs apart on a
/// dashboard, human-decodable, no dependencies.
std::string MakeRunId() {
  char when[32];
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  std::strftime(when, sizeof(when), "%Y%m%dT%H%M%S", &utc);
  return std::string("tfb-") + when + "-" + std::to_string(getpid());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tfb;

  pipeline::BenchmarkConfig config;
  bool resume = false;
  bool isolation_forced = false;
  pipeline::Isolation isolation = pipeline::Isolation::kInProcess;
  const char* config_path = nullptr;
  std::string trace_out;    // --trace-out= overrides the config key.
  std::string metrics_out;  // --metrics-out= overrides the config key.
  // CLI overrides for the telemetry config keys; the *_set flags separate
  // "flag absent" from "flag set to the default value".
  obs::LogLevel log_level = obs::LogLevel::kInfo;
  bool log_level_set = false;
  std::string log_json;
  obs::ProgressMode progress_mode = obs::ProgressMode::kAuto;
  bool progress_set = false;
  long serve_port = -1;  // -1 = flag absent.
  long workers = -1;     // -1 = flag absent (config key decides).
  long chaos_kill_worker = -1;  // Spawn index to fault-kill; -1 = off.
  std::string transport;   // --transport= overrides the config key.
  std::string listen;      // --listen=HOST:PORT overrides the config key.
  std::string chaos_net;   // --chaos-net= overrides the config key.
  std::string kernel;      // --kernel= overrides the config key.
  bool external_workers = false;
  const char* usage =
      "usage: tfb_run [config] [--resume] [--isolate=process|in_process]\n"
      "               [--workers=N] [--chaos-kill-worker=K]\n"
      "               [--transport=socketpair|tcp] [--listen=HOST:PORT]\n"
      "               [--external-workers] [--chaos-net=SPEC]\n"
      "               [--trace-out=FILE.json] [--metrics-out=FILE[.json]]\n"
      "               [--serve=PORT] [--progress=auto|bar|plain|off]\n"
      "               [--log-level=LEVEL] [--log-json=FILE]\n"
      "               [--kernel=scalar|avx2|neon]\n";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--print-default") == 0) {
      config.datasets = {"ETTh2", "ILI"};
      config.methods = {"VAR", "LinearRegression", "NLinear"};
      std::printf("%s", pipeline::ConfigToString(config).c_str());
      return 0;
    }
    if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[i], "--isolate=process") == 0) {
      isolation_forced = true;
      isolation = pipeline::Isolation::kProcess;
    } else if (std::strcmp(argv[i], "--isolate=in_process") == 0) {
      isolation_forced = true;
      isolation = pipeline::Isolation::kInProcess;
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers = std::strtol(argv[i] + 10, nullptr, 10);
      if (workers < 0 || workers > 256) {
        std::fprintf(stderr, "bad --workers count: %s\n", argv[i] + 10);
        return 1;
      }
    } else if (std::strncmp(argv[i], "--chaos-kill-worker=", 20) == 0) {
      chaos_kill_worker = std::strtol(argv[i] + 20, nullptr, 10);
      if (chaos_kill_worker < 0) {
        std::fprintf(stderr, "bad --chaos-kill-worker index: %s\n",
                     argv[i] + 20);
        return 1;
      }
    } else if (std::strncmp(argv[i], "--transport=", 12) == 0) {
      transport = argv[i] + 12;
      if (transport != "socketpair" && transport != "tcp") {
        std::fprintf(stderr, "bad --transport (socketpair|tcp): %s\n",
                     transport.c_str());
        return 1;
      }
    } else if (std::strncmp(argv[i], "--listen=", 9) == 0) {
      listen = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--external-workers") == 0) {
      external_workers = true;
    } else if (std::strncmp(argv[i], "--chaos-net=", 12) == 0) {
      chaos_net = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--serve=", 8) == 0) {
      serve_port = std::strtol(argv[i] + 8, nullptr, 10);
      if (serve_port < 0 || serve_port > 65535) {
        std::fprintf(stderr, "bad --serve port: %s\n", argv[i] + 8);
        return 1;
      }
    } else if (std::strncmp(argv[i], "--progress=", 11) == 0) {
      const auto mode = obs::ParseProgressMode(argv[i] + 11);
      if (!mode) {
        std::fprintf(stderr, "bad --progress mode: %s\n", argv[i] + 11);
        return 1;
      }
      progress_mode = *mode;
      progress_set = true;
    } else if (std::strncmp(argv[i], "--log-level=", 12) == 0) {
      const auto level = obs::ParseLogLevel(argv[i] + 12);
      if (!level) {
        std::fprintf(stderr, "bad --log-level: %s\n", argv[i] + 12);
        return 1;
      }
      log_level = *level;
      log_level_set = true;
    } else if (std::strncmp(argv[i], "--log-json=", 11) == 0) {
      log_json = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--kernel=", 9) == 0) {
      kernel = argv[i] + 9;
      if (kernel != "scalar" && kernel != "avx2" && kernel != "neon") {
        std::fprintf(stderr, "bad --kernel (scalar|avx2|neon): %s\n",
                     kernel.c_str());
        return 1;
      }
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "%s", usage);
      return 1;
    } else if (config_path == nullptr) {
      config_path = argv[i];
    } else {
      std::fprintf(stderr, "%s", usage);
      return 1;
    }
  }
  if (config_path != nullptr) {
    std::string error;
    const auto loaded = pipeline::LoadConfigFile(config_path, &error);
    if (!loaded) {
      std::fprintf(stderr, "config error: %s\n", error.c_str());
      return 1;
    }
    config = *loaded;
  } else {
    // Demo configuration.
    config.datasets = {"ILI", "NASDAQ"};
    config.methods = {"SeasonalNaive", "VAR", "LinearRegression", "NLinear"};
    config.horizons = {12};
    config.train_epochs = 10;
  }
  if (resume && config.journal.empty()) {
    std::fprintf(stderr,
                 "--resume needs a `journal = <path>` key in the config\n");
    return 1;
  }
  // Pin the GEMM dispatch path before any compute runs. A valid name that
  // this host cannot run falls back to scalar (the portable baseline) —
  // results are bit-identical on every path, so only speed is affected.
  if (kernel.empty()) kernel = config.kernel;
  if (!kernel.empty()) {
    if (!linalg::kernel::SetKernelPathByName(kernel)) {
      std::fprintf(stderr,
                   "kernel path %s unavailable on this host; using scalar\n",
                   kernel.c_str());
      linalg::kernel::SetKernelPath(linalg::kernel::KernelPath::kScalar);
    }
    std::printf("gemm kernel path: %s\n",
                linalg::kernel::KernelPathName(
                    linalg::kernel::ActiveKernelPath()));
  }
  if (trace_out.empty()) trace_out = config.trace_out;
  if (metrics_out.empty()) metrics_out = config.metrics_out;
  if (!log_level_set) log_level = config.log_level;
  if (log_json.empty()) log_json = config.log_json;
  if (!progress_set) progress_mode = config.progress;
  const std::uint16_t port =
      serve_port >= 0 ? static_cast<std::uint16_t>(serve_port)
                      : static_cast<std::uint16_t>(config.serve_port);
  // Serving /metrics implies collecting them.
  if (!trace_out.empty() || !metrics_out.empty() || port != 0) {
    obs::SetEnabled(true);
    if (!trace_out.empty()) obs::DefaultTracer().Enable();
  }
  obs::DefaultLogger().SetLevel(log_level);
  if (!log_json.empty() && !obs::DefaultLogger().OpenJsonlSink(log_json)) {
    std::fprintf(stderr, "cannot open --log-json sink %s\n", log_json.c_str());
    return 1;
  }
  const std::string run_id = MakeRunId();
  obs::HttpExporter exporter({.port = port, .run_id = run_id});
  if (port != 0) {
    const base::Status status = exporter.Start();
    if (!status.ok()) {
      std::fprintf(stderr, "--serve failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }

  const auto tasks = pipeline::BuildTasks(config);
  std::printf("running %zu tasks (%zu datasets x %zu methods x %zu horizons)"
              "...\n\n",
              tasks.size(), config.datasets.size(), config.methods.size(),
              config.horizons.size());
  pipeline::RunnerOptions runner_options = config.MakeRunnerOptions();
  runner_options.resume = resume;
  // With a live progress display the per-task INFO lines are redundant
  // noise; keep them for off/plain-free runs (still reachable anywhere via
  // --log-level=debug).
  runner_options.verbose = progress_mode == obs::ProgressMode::kOff;
  runner_options.progress = progress_mode;
  if (isolation_forced) runner_options.isolation = isolation;
  if (runner_options.isolation == pipeline::Isolation::kProcess) {
    std::printf("process isolation: on (memory_limit_mb=%zu, "
                "cpu_limit_seconds=%g)\n",
                runner_options.memory_limit_mb,
                runner_options.cpu_limit_seconds);
  }
  const std::size_t effective_workers =
      workers >= 0 ? static_cast<std::size_t>(workers) : config.workers;
  std::vector<pipeline::ResultRow> rows;
  if (effective_workers > 0) {
    pipeline::ShardOptions shard_options;
    shard_options.num_workers = effective_workers;
    shard_options.shard_size = config.shard_size;
    if (chaos_kill_worker >= 0) {
      shard_options.fault_kill_worker = static_cast<int>(chaos_kill_worker);
    }
    // CLI flags override the transport/listen/chaos config keys.
    if (transport.empty()) transport = config.transport;
    if (listen.empty() && (config.listen_host != "127.0.0.1" ||
                           config.listen_port != 0)) {
      listen = config.listen_host + ":" + std::to_string(config.listen_port);
    }
    if (chaos_net.empty()) chaos_net = config.chaos_net;
    if (transport == "tcp") {
      shard_options.transport = pipeline::ShardTransport::kTcp;
      shard_options.spawn_workers =
          !(external_workers || config.external_workers);
    }
    if (!listen.empty()) {
      const std::size_t colon = listen.find_last_of(':');
      shard_options.listen_host =
          colon == std::string::npos ? listen : listen.substr(0, colon);
      if (colon != std::string::npos) {
        const long p = std::strtol(listen.c_str() + colon + 1, nullptr, 10);
        if (p < 0 || p > 65535) {
          std::fprintf(stderr, "bad --listen port in %s\n", listen.c_str());
          return 1;
        }
        shard_options.listen_port = static_cast<std::uint16_t>(p);
      }
    }
    if (!chaos_net.empty()) {
      std::string chaos_error;
      const auto plan = pipeline::ParseFaultPlan(chaos_net, &chaos_error);
      if (!plan) {
        std::fprintf(stderr, "bad --chaos-net: %s\n", chaos_error.c_str());
        return 1;
      }
      shard_options.chaos = *plan;
      std::printf("network chaos: %s\n",
                  pipeline::FaultPlanToString(*plan).c_str());
    }
    pipeline::ShardCoordinator coordinator(runner_options, shard_options);
    if (shard_options.transport == pipeline::ShardTransport::kTcp) {
      std::string bind_error;
      if (!coordinator.BindListener(&bind_error)) {
        std::fprintf(stderr, "--listen failed: %s\n", bind_error.c_str());
        return 1;
      }
      std::printf("sharded execution: %zu workers over tcp %s:%u%s\n",
                  effective_workers, shard_options.listen_host.c_str(),
                  static_cast<unsigned>(coordinator.listen_port()),
                  shard_options.spawn_workers
                      ? ""
                      : " (waiting for external tfb_worker processes)");
    } else {
      std::printf("sharded execution: %zu worker processes\n",
                  effective_workers);
    }
    rows = coordinator.Run(tasks);
    const pipeline::ShardRunStats& stats = coordinator.stats();
    if (stats.worker_deaths > 0 || stats.interrupted) {
      std::printf("shard recovery: %zu worker death(s), %zu re-dispatch(es), "
                  "%zu split(s), %zu quarantined%s\n",
                  stats.worker_deaths, stats.redispatches, stats.shard_splits,
                  stats.quarantined,
                  stats.interrupted ? " (run interrupted)" : "");
    }
    if (stats.reconnects > 0 || stats.disconnects > 0 ||
        stats.fenced_completions > 0 || stats.corrupt_frames > 0) {
      std::printf("transport recovery: %zu disconnect(s), %zu reconnect(s), "
                  "%zu fenced completion(s), %zu corrupt frame(s)\n",
                  stats.disconnects, stats.reconnects,
                  stats.fenced_completions, stats.corrupt_frames);
    }
  } else {
    rows = pipeline::BenchmarkRunner(runner_options).Run(tasks);
  }

  report::PrintTable(std::cout, rows, config.metrics);
  report::PrintPerfSummary(std::cout, rows);
  if (report::WriteCsv("tfb_results.csv", rows, config.metrics)) {
    std::printf("\nwrote tfb_results.csv\n");
  }
  if (!trace_out.empty()) {
    if (obs::DefaultTracer().WriteJson(trace_out)) {
      std::printf("wrote %s (%llu events; load in chrome://tracing)\n",
                  trace_out.c_str(),
                  static_cast<unsigned long long>(
                      obs::DefaultTracer().Snapshot().size()));
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_out.c_str());
    }
  }
  if (!metrics_out.empty()) {
    if (obs::WriteMetricsFile(obs::DefaultRegistry(), metrics_out)) {
      std::printf("wrote %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   metrics_out.c_str());
    }
  }

  // Visualization module: bar chart of the first metric per method on the
  // first dataset/horizon cell.
  if (!rows.empty() && !config.metrics.empty()) {
    std::vector<std::string> labels;
    std::vector<double> values;
    for (const auto& row : rows) {
      if (row.dataset != rows[0].dataset || row.horizon != rows[0].horizon ||
          !row.ok) {
        continue;
      }
      labels.push_back(row.method);
      values.push_back(row.metrics.at(config.metrics[0]));
    }
    std::printf("\n%s on %s (h=%zu):\n%s",
                eval::MetricName(config.metrics[0]).c_str(),
                rows[0].dataset.c_str(), rows[0].horizon,
                report::AsciiBarChart(labels, values).c_str());
  }

  exporter.Stop();
  // Give watchdog workers abandoned at a hard-deadline cutoff a short
  // grace to come home so the process exits with every thread joined.
  if (const std::size_t orphans = pipeline::ReapAbandonedWorkers(1.0);
      orphans > 0) {
    obs::DefaultLogger().Warn(
        "exiting with hung watchdog workers still running",
        {{"count", std::to_string(orphans)}});
  }
  return 0;
}
