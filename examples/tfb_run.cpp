// tfb_run: the automated end-to-end pipeline as a command-line tool
// (Section 4.4: "users only need to deploy their method ... and choose or
// configure the configuration file, then TFB can automatically run the
// pipeline").
//
// Usage:
//   ./build/examples/tfb_run my_run.conf            # run a config file
//   ./build/examples/tfb_run --print-default        # show default config
//   ./build/examples/tfb_run                        # run a small demo
//
// Emits the result table to stdout and tfb_results.csv to the working
// directory.

#include <cstdio>
#include <cstring>
#include <iostream>

#include "tfb/pipeline/config.h"
#include "tfb/report/ascii_plot.h"
#include "tfb/tfb.h"

int main(int argc, char** argv) {
  using namespace tfb;

  pipeline::BenchmarkConfig config;
  if (argc > 1 && std::strcmp(argv[1], "--print-default") == 0) {
    config.datasets = {"ETTh2", "ILI"};
    config.methods = {"VAR", "LinearRegression", "NLinear"};
    std::printf("%s", pipeline::ConfigToString(config).c_str());
    return 0;
  }
  if (argc > 1) {
    std::string error;
    const auto loaded = pipeline::LoadConfigFile(argv[1], &error);
    if (!loaded) {
      std::fprintf(stderr, "config error: %s\n", error.c_str());
      return 1;
    }
    config = *loaded;
  } else {
    // Demo configuration.
    config.datasets = {"ILI", "NASDAQ"};
    config.methods = {"SeasonalNaive", "VAR", "LinearRegression", "NLinear"};
    config.horizons = {12};
    config.train_epochs = 10;
  }

  const auto tasks = pipeline::BuildTasks(config);
  std::printf("running %zu tasks (%zu datasets x %zu methods x %zu horizons)"
              "...\n\n",
              tasks.size(), config.datasets.size(), config.methods.size(),
              config.horizons.size());
  pipeline::RunnerOptions runner_options;
  runner_options.num_threads = config.num_threads;
  const auto rows = pipeline::BenchmarkRunner(runner_options).Run(tasks);

  report::PrintTable(std::cout, rows, config.metrics);
  if (report::WriteCsv("tfb_results.csv", rows, config.metrics)) {
    std::printf("\nwrote tfb_results.csv\n");
  }

  // Visualization module: bar chart of the first metric per method on the
  // first dataset/horizon cell.
  if (!rows.empty() && !config.metrics.empty()) {
    std::vector<std::string> labels;
    std::vector<double> values;
    for (const auto& row : rows) {
      if (row.dataset != rows[0].dataset || row.horizon != rows[0].horizon ||
          !row.ok) {
        continue;
      }
      labels.push_back(row.method);
      values.push_back(row.metrics.at(config.metrics[0]));
    }
    std::printf("\n%s on %s (h=%zu):\n%s",
                eval::MetricName(config.metrics[0]).c_str(),
                rows[0].dataset.c_str(), rows[0].horizon,
                report::AsciiBarChart(labels, values).c_str());
  }
  return 0;
}
