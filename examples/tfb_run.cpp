// tfb_run: the automated end-to-end pipeline as a command-line tool
// (Section 4.4: "users only need to deploy their method ... and choose or
// configure the configuration file, then TFB can automatically run the
// pipeline").
//
// Usage:
//   ./build/examples/tfb_run my_run.conf            # run a config file
//   ./build/examples/tfb_run my_run.conf --resume   # skip journaled tasks
//   ./build/examples/tfb_run my_run.conf --isolate=process  # sandbox tasks
//   ./build/examples/tfb_run --print-default        # show default config
//   ./build/examples/tfb_run                        # run a small demo
//
// Fault isolation (see the "Failure semantics" section of DESIGN.md): the
// config keys `deadline_seconds`, `max_retries`, `retry_backoff_ms`,
// `fallback`, and `journal` bound each task's budget, retry transient
// failures with exponential backoff, keep the table complete with a
// fallback forecaster, and journal finished rows as JSONL. With a `journal`
// configured, `--resume` continues an interrupted grid, executing only the
// cells the journal does not cover.
//
// Process isolation (`--isolate=process`, or `isolation = process` in the
// config): every task runs in a fork()ed child under the configured
// `memory_limit_mb` / `cpu_limit_seconds` resource limits. A method that
// segfaults, aborts, allocates without bound, or hangs is killed and
// classified (crash / oom / timeout / abort) in the journal and the
// report's failure footer; the rest of the grid is untouched.
// `--isolate=in_process` forces the threaded mode over the config.
//
// Observability (see the "Observability" section of DESIGN.md):
// `--trace-out=run.trace.json` (config key `trace_out`) captures runner /
// sandbox / trainer / eval spans as Chrome trace_event JSON — load it in
// chrome://tracing or https://ui.perfetto.dev. `--metrics-out=run.prom`
// (config key `metrics_out`) dumps the metrics registry as Prometheus
// text, or JSON when the path ends in ".json". Either flag turns
// collection on; without them the instrumented paths stay disabled and
// effectively free. Resource accounting (per-task CPU seconds; peak RSS
// under process isolation) always lands on the rows, the CSV, and the
// performance summary printed after the result table.
//
// Emits the result table to stdout and tfb_results.csv to the working
// directory.

#include <cstdio>
#include <cstring>
#include <iostream>

#include "tfb/pipeline/config.h"
#include "tfb/report/ascii_plot.h"
#include "tfb/tfb.h"

int main(int argc, char** argv) {
  using namespace tfb;

  pipeline::BenchmarkConfig config;
  bool resume = false;
  bool isolation_forced = false;
  pipeline::Isolation isolation = pipeline::Isolation::kInProcess;
  const char* config_path = nullptr;
  std::string trace_out;    // --trace-out= overrides the config key.
  std::string metrics_out;  // --metrics-out= overrides the config key.
  const char* usage =
      "usage: tfb_run [config] [--resume] [--isolate=process|in_process]\n"
      "               [--trace-out=FILE.json] [--metrics-out=FILE[.json]]\n";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--print-default") == 0) {
      config.datasets = {"ETTh2", "ILI"};
      config.methods = {"VAR", "LinearRegression", "NLinear"};
      std::printf("%s", pipeline::ConfigToString(config).c_str());
      return 0;
    }
    if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[i], "--isolate=process") == 0) {
      isolation_forced = true;
      isolation = pipeline::Isolation::kProcess;
    } else if (std::strcmp(argv[i], "--isolate=in_process") == 0) {
      isolation_forced = true;
      isolation = pipeline::Isolation::kInProcess;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "%s", usage);
      return 1;
    } else if (config_path == nullptr) {
      config_path = argv[i];
    } else {
      std::fprintf(stderr, "%s", usage);
      return 1;
    }
  }
  if (config_path != nullptr) {
    std::string error;
    const auto loaded = pipeline::LoadConfigFile(config_path, &error);
    if (!loaded) {
      std::fprintf(stderr, "config error: %s\n", error.c_str());
      return 1;
    }
    config = *loaded;
  } else {
    // Demo configuration.
    config.datasets = {"ILI", "NASDAQ"};
    config.methods = {"SeasonalNaive", "VAR", "LinearRegression", "NLinear"};
    config.horizons = {12};
    config.train_epochs = 10;
  }
  if (resume && config.journal.empty()) {
    std::fprintf(stderr,
                 "--resume needs a `journal = <path>` key in the config\n");
    return 1;
  }
  if (trace_out.empty()) trace_out = config.trace_out;
  if (metrics_out.empty()) metrics_out = config.metrics_out;
  if (!trace_out.empty() || !metrics_out.empty()) {
    obs::SetEnabled(true);
    if (!trace_out.empty()) obs::DefaultTracer().Enable();
  }

  const auto tasks = pipeline::BuildTasks(config);
  std::printf("running %zu tasks (%zu datasets x %zu methods x %zu horizons)"
              "...\n\n",
              tasks.size(), config.datasets.size(), config.methods.size(),
              config.horizons.size());
  pipeline::RunnerOptions runner_options = config.MakeRunnerOptions();
  runner_options.resume = resume;
  runner_options.verbose = true;
  if (isolation_forced) runner_options.isolation = isolation;
  if (runner_options.isolation == pipeline::Isolation::kProcess) {
    std::printf("process isolation: on (memory_limit_mb=%zu, "
                "cpu_limit_seconds=%g)\n",
                runner_options.memory_limit_mb,
                runner_options.cpu_limit_seconds);
  }
  const auto rows = pipeline::BenchmarkRunner(runner_options).Run(tasks);

  report::PrintTable(std::cout, rows, config.metrics);
  report::PrintPerfSummary(std::cout, rows);
  if (report::WriteCsv("tfb_results.csv", rows, config.metrics)) {
    std::printf("\nwrote tfb_results.csv\n");
  }
  if (!trace_out.empty()) {
    if (obs::DefaultTracer().WriteJson(trace_out)) {
      std::printf("wrote %s (%llu events; load in chrome://tracing)\n",
                  trace_out.c_str(),
                  static_cast<unsigned long long>(
                      obs::DefaultTracer().Snapshot().size()));
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_out.c_str());
    }
  }
  if (!metrics_out.empty()) {
    if (obs::WriteMetricsFile(obs::DefaultRegistry(), metrics_out)) {
      std::printf("wrote %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   metrics_out.c_str());
    }
  }

  // Visualization module: bar chart of the first metric per method on the
  // first dataset/horizon cell.
  if (!rows.empty() && !config.metrics.empty()) {
    std::vector<std::string> labels;
    std::vector<double> values;
    for (const auto& row : rows) {
      if (row.dataset != rows[0].dataset || row.horizon != rows[0].horizon ||
          !row.ok) {
        continue;
      }
      labels.push_back(row.method);
      values.push_back(row.metrics.at(config.metrics[0]));
    }
    std::printf("\n%s on %s (h=%zu):\n%s",
                eval::MetricName(config.metrics[0]).c_str(),
                rows[0].dataset.c_str(), rows[0].horizon,
                report::AsciiBarChart(labels, values).c_str());
  }
  return 0;
}
