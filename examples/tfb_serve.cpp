// tfb_serve: the forecast serving plane as a standalone server (the
// "Serving plane" section of DESIGN.md). Loads fitted TFBM model files
// into a warm LRU-bounded registry and serves forecasts over HTTP:
//
//   POST /forecast  {"model":"NAME[@V]","horizon":H,"history":[...]}
//   GET  /models    registered model keys + registry occupancy
//   GET  /metrics   Prometheus text (tfb_serve_* + tfb_http_*)
//   GET  /status    JSON with a "serve" object (queue depth, batches, shed)
//   GET  /healthz   liveness
//
// Concurrent POSTs are coalesced into batches by a small dispatcher crew;
// admission is bounded (queue depth + the machine's coarse-reservation
// budget) and overload is shed with 429 + Retry-After.
//
// Usage:
//   ./build/examples/tfb_serve --port=8080 --models=./models
//   ./build/examples/tfb_serve --port=8080 --demo     # fit demo models
//   curl -s localhost:8080/models
//   curl -s -X POST localhost:8080/forecast \
//     -d '{"model":"theta-demo","horizon":8,"history":[1,2,3,4,5,6,7,8]}'
//
// Flags:
//   --port=N            TCP port (default 8080; 0 = ephemeral, printed)
//   --bind=ADDR         bind address (default 127.0.0.1)
//   --models=DIR        load every *.tfbm file in DIR; the model key is the
//                       file name without extension ("etth1-dlinear@2.tfbm"
//                       registers "etth1-dlinear@2")
//   --demo              fit small demo models on a synthetic series and
//                       register them (default when --models is absent)
//   --demo-methods=A,B  comma list of registry methods for --demo
//                       (default Naive,Theta,DLinear)
//   --save=DIR          with --demo: also write the fitted models to DIR
//                       as .tfbm files (bootstrap a --models directory)
//   --horizon=H         demo fit horizon (default 24)
//   --capacity=K        max models kept fitted in memory (default 8)
//   --max-queue=N       admission bound before 429 (default 256)
//   --max-batch=N       batch coalescing bound (default 16)
//   --linger-ms=N       batch coalescing window (default 2)
//   --dispatchers=N     dispatcher threads (default 2)
//   --max-reserved=N    shed when ReservedCoarseWorkers() >= N (default 0
//                       = gate off)
//   --access-log=FILE   append one wide-event JSONL line per answered
//                       request (request id, model, code, per-stage and
//                       total latency seconds)

#include <dirent.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "tfb/datagen/registry.h"
#include "tfb/obs/http_exporter.h"
#include "tfb/obs/log.h"
#include "tfb/obs/metrics.h"
#include "tfb/pipeline/method_registry.h"
#include "tfb/serve/model_store.h"
#include "tfb/serve/registry.h"
#include "tfb/serve/service.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

bool FlagValue(const char* arg, const char* name, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    std::size_t end = csv.find(',', begin);
    if (end == std::string::npos) end = csv.size();
    if (end > begin) out.push_back(csv.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

/// Registers every *.tfbm file under `dir`; key = file name minus extension.
bool LoadModelDir(const std::string& dir, tfb::serve::ModelRegistry* registry) {
  DIR* handle = opendir(dir.c_str());
  if (handle == nullptr) {
    std::fprintf(stderr, "tfb_serve: cannot open --models dir %s\n",
                 dir.c_str());
    return false;
  }
  std::size_t registered = 0;
  while (dirent* entry = readdir(handle)) {
    const std::string name = entry->d_name;
    const std::string suffix = ".tfbm";
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const std::string key = name.substr(0, name.size() - suffix.size());
    const tfb::base::Status status =
        registry->AddFile(key, dir + "/" + name);
    if (!status.ok()) {
      std::fprintf(stderr, "tfb_serve: skipping %s: %s\n", name.c_str(),
                   status.message().c_str());
      continue;
    }
    ++registered;
  }
  closedir(handle);
  std::fprintf(stderr, "tfb_serve: registered %zu model(s) from %s\n",
               registered, dir.c_str());
  return registered > 0;
}

/// Fits `methods` on a synthetic univariate series and registers them as
/// "<method, lowercased>-demo". With `save_dir`, also writes .tfbm files.
bool FitDemoModels(const std::vector<std::string>& methods,
                   std::size_t horizon, const std::string& save_dir,
                   tfb::serve::ModelRegistry* registry) {
  const auto profile = tfb::datagen::FindProfile("ETTh1");
  if (!profile.has_value()) {
    std::fprintf(stderr, "tfb_serve: demo profile missing\n");
    return false;
  }
  const tfb::ts::TimeSeries series =
      tfb::datagen::GenerateDataset(*profile).Variable(0);
  bool any = false;
  for (const std::string& method : methods) {
    tfb::pipeline::MethodParams params;
    params.horizon = horizon;
    params.period = series.seasonal_period();
    auto config = tfb::pipeline::MakeMethod(method, params);
    if (!config.has_value()) {
      std::fprintf(stderr, "tfb_serve: unknown demo method %s\n",
                   method.c_str());
      continue;
    }
    auto forecaster = config->factory();
    forecaster->Fit(series);
    std::string key;
    for (const char c : method) {
      key += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    key += "-demo";
    if (!save_dir.empty()) {
      const std::string path = save_dir + "/" + key + ".tfbm";
      const tfb::base::Status saved =
          tfb::serve::SaveModelFile(*forecaster, method, params, path);
      if (!saved.ok()) {
        std::fprintf(stderr, "tfb_serve: save %s: %s\n", path.c_str(),
                     saved.message().c_str());
      }
    }
    tfb::serve::ModelArtifact artifact;
    artifact.method = method;
    artifact.params = params;
    artifact.forecaster = std::move(forecaster);
    const tfb::base::Status added =
        registry->AddModel(key, std::move(artifact));
    if (!added.ok()) {
      std::fprintf(stderr, "tfb_serve: register %s: %s\n", key.c_str(),
                   added.message().c_str());
      continue;
    }
    std::fprintf(stderr, "tfb_serve: fitted demo model %s (%s, horizon %zu)\n",
                 key.c_str(), method.c_str(), horizon);
    any = true;
  }
  return any;
}

}  // namespace

int main(int argc, char** argv) {
  std::string bind_address = "127.0.0.1";
  long port = 8080;
  std::string models_dir;
  std::string save_dir;
  bool demo = false;
  std::string demo_methods = "Naive,Theta,DLinear";
  long horizon = 24;
  long capacity = 8;
  tfb::serve::ForecastServiceOptions service_options;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (FlagValue(argv[i], "--port", &value)) {
      port = std::atol(value.c_str());
    } else if (FlagValue(argv[i], "--bind", &value)) {
      bind_address = value;
    } else if (FlagValue(argv[i], "--models", &value)) {
      models_dir = value;
    } else if (FlagValue(argv[i], "--save", &value)) {
      save_dir = value;
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (FlagValue(argv[i], "--demo-methods", &value)) {
      demo_methods = value;
    } else if (FlagValue(argv[i], "--horizon", &value)) {
      horizon = std::atol(value.c_str());
    } else if (FlagValue(argv[i], "--capacity", &value)) {
      capacity = std::atol(value.c_str());
    } else if (FlagValue(argv[i], "--max-queue", &value)) {
      service_options.max_queue = static_cast<std::size_t>(
          std::atol(value.c_str()));
    } else if (FlagValue(argv[i], "--max-batch", &value)) {
      service_options.max_batch = static_cast<std::size_t>(
          std::atol(value.c_str()));
    } else if (FlagValue(argv[i], "--linger-ms", &value)) {
      service_options.batch_linger_ms = static_cast<int>(
          std::atol(value.c_str()));
    } else if (FlagValue(argv[i], "--dispatchers", &value)) {
      service_options.dispatch_threads = static_cast<std::size_t>(
          std::atol(value.c_str()));
    } else if (FlagValue(argv[i], "--max-reserved", &value)) {
      service_options.max_reserved_workers = static_cast<std::size_t>(
          std::atol(value.c_str()));
    } else if (FlagValue(argv[i], "--access-log", &value)) {
      service_options.access_log_path = value;
    } else {
      std::fprintf(stderr, "tfb_serve: unknown flag %s (see header comment)\n",
                   argv[i]);
      return 2;
    }
  }
  if (port < 0 || port > 65535 || horizon < 1 || capacity < 1) {
    std::fprintf(stderr, "tfb_serve: bad --port/--horizon/--capacity\n");
    return 2;
  }
  if (models_dir.empty()) demo = true;

  // A server exists to be observed: metrics collection is on by default.
  tfb::obs::SetEnabled(true);

  tfb::serve::ModelRegistry registry(static_cast<std::size_t>(capacity));
  bool have_models = false;
  if (!models_dir.empty()) {
    have_models = LoadModelDir(models_dir, &registry);
  }
  if (demo) {
    have_models |= FitDemoModels(SplitCsv(demo_methods),
                                 static_cast<std::size_t>(horizon), save_dir,
                                 &registry);
  }
  if (!have_models) {
    std::fprintf(stderr, "tfb_serve: no models registered; nothing to serve\n");
    return 1;
  }

  tfb::serve::ForecastService service(&registry, service_options);
  service.Start();

  tfb::obs::HttpExporterOptions exporter_options;
  exporter_options.bind_address = bind_address;
  exporter_options.port = static_cast<std::uint16_t>(port);
  exporter_options.run_id = "tfb_serve";
  tfb::obs::HttpExporter exporter(exporter_options);
  service.InstallRoutes(&exporter);
  const tfb::base::Status started = exporter.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "tfb_serve: %s\n", started.message().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "tfb_serve: serving on %s:%u (POST /forecast, GET /models "
               "/metrics /status /healthz); SIGINT to drain and exit\n",
               bind_address.c_str(), exporter.port());

  struct sigaction action{};
  action.sa_handler = HandleSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  while (!g_stop.load()) {
    usleep(100 * 1000);
  }

  std::fprintf(stderr, "tfb_serve: draining...\n");
  service.Stop();    // Finish queued forecasts first.
  exporter.Stop();   // Then close the listener.
  const tfb::serve::ForecastServiceStats stats = service.Stats();
  std::fprintf(stderr,
               "tfb_serve: done: %llu admitted, %llu completed, %llu shed, "
               "%llu batches (max %zu)\n",
               static_cast<unsigned long long>(stats.admitted),
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.shed),
               static_cast<unsigned long long>(stats.batches),
               stats.max_batch_seen);
  return 0;
}
