// tfb_worker: a standalone shard worker for multi-host benchmark runs.
//
// The coordinator side (`tfb_run --workers=N --transport=tcp
// --external-workers --listen=0.0.0.0:PORT`) listens and dispatches; this
// binary connects, receives its tasks over the wire (framed, CRC-checked;
// see src/tfb/pipeline/transport.h), computes, and streams result rows
// back. It holds no journal and writes nothing locally — durability is the
// coordinator's job, which makes a worker freely killable: on connection
// loss it reconnects with capped exponential backoff under a fresh lease
// epoch, and any stale rows it replays are fenced by the coordinator.
//
// When the coordinator runs with observability on, it asks this worker
// (via the WELCOME options blob) to collect spans and metric deltas and
// ship them back piggybacked on heartbeat/DONE frames — no flags needed
// here; the worker's telemetry follows the coordinator's.
//
// Usage:
//   ./build/examples/tfb_worker --connect=HOST:PORT
//       [--retry-backoff-ms=MS] [--retry-backoff-max-ms=MS]
//       [--max-connect-failures=N] [--chaos-net=SPEC]
//       [--log-level=LEVEL] [--log-json=FILE]
//
// Exit codes: 0 after the coordinator's QUIT, 1 when the connect budget is
// exhausted (coordinator gone or unreachable).
//
// --chaos-net injects deterministic, seeded faults into this worker's send
// path (drop, corrupt, short writes, delays, partitions) — the same spec
// grammar as tfb_run's flag; used by the network-chaos CI smoke job.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "tfb/obs/log.h"
#include "tfb/pipeline/shard_worker.h"
#include "tfb/pipeline/transport.h"

int main(int argc, char** argv) {
  using namespace tfb;

  pipeline::TcpWorkerOptions options;
  bool have_endpoint = false;
  const char* usage =
      "usage: tfb_worker --connect=HOST:PORT\n"
      "                  [--retry-backoff-ms=MS] [--retry-backoff-max-ms=MS]\n"
      "                  [--max-connect-failures=N] [--chaos-net=SPEC]\n"
      "                  [--log-level=trace|debug|info|warn|error|off]\n"
      "                  [--log-json=FILE]\n";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--connect=", 10) == 0) {
      const std::string endpoint = argv[i] + 10;
      const std::size_t colon = endpoint.find_last_of(':');
      if (colon == std::string::npos || colon == 0) {
        std::fprintf(stderr, "bad --connect endpoint (need HOST:PORT): %s\n",
                     endpoint.c_str());
        return 1;
      }
      char* end = nullptr;
      const long port = std::strtol(endpoint.c_str() + colon + 1, &end, 10);
      if (*end != '\0' || port <= 0 || port > 65535) {
        std::fprintf(stderr, "bad --connect port in %s\n", endpoint.c_str());
        return 1;
      }
      options.host = endpoint.substr(0, colon);
      options.port = static_cast<std::uint16_t>(port);
      have_endpoint = true;
    } else if (std::strncmp(argv[i], "--retry-backoff-ms=", 19) == 0) {
      options.loop.retry_backoff_ms = std::strtod(argv[i] + 19, nullptr);
    } else if (std::strncmp(argv[i], "--retry-backoff-max-ms=", 23) == 0) {
      options.loop.retry_backoff_max_ms = std::strtod(argv[i] + 23, nullptr);
    } else if (std::strncmp(argv[i], "--max-connect-failures=", 23) == 0) {
      const long n = std::strtol(argv[i] + 23, nullptr, 10);
      if (n <= 0) {
        std::fprintf(stderr, "bad --max-connect-failures: %s\n",
                     argv[i] + 23);
        return 1;
      }
      options.loop.max_connect_failures = static_cast<std::size_t>(n);
    } else if (std::strncmp(argv[i], "--chaos-net=", 12) == 0) {
      std::string error;
      const auto plan = pipeline::ParseFaultPlan(argv[i] + 12, &error);
      if (!plan) {
        std::fprintf(stderr, "bad --chaos-net: %s\n", error.c_str());
        return 1;
      }
      options.loop.chaos = *plan;
    } else if (std::strncmp(argv[i], "--log-level=", 12) == 0) {
      const auto level = obs::ParseLogLevel(argv[i] + 12);
      if (!level) {
        std::fprintf(stderr, "bad --log-level: %s\n", argv[i] + 12);
        return 1;
      }
      obs::DefaultLogger().SetLevel(*level);
    } else if (std::strncmp(argv[i], "--log-json=", 11) == 0) {
      if (!obs::DefaultLogger().OpenJsonlSink(argv[i] + 11)) {
        std::fprintf(stderr, "cannot open --log-json file: %s\n",
                     argv[i] + 11);
        return 1;
      }
    } else {
      std::fprintf(stderr, "%s", usage);
      return 1;
    }
  }
  if (!have_endpoint) {
    std::fprintf(stderr, "%s", usage);
    return 1;
  }
  obs::DefaultLogger().Info(
      "tfb_worker starting",
      {{"host", options.host},
       {"port", std::to_string(options.port)}});
  const int rc = pipeline::RunTcpShardWorker(options);
  return rc;
}
