// Scenario: integrating YOUR forecaster through the Universal Interface.
//
// TFB's method layer accepts any model implementing tfb::methods::Forecaster
// (Section 4.4: "users can easily integrate forecasting methods implemented
// in third-party libraries by writing a simple Universal Interface"). This
// example wraps a hand-rolled exponentially-weighted seasonal blend and
// benchmarks it head-to-head against built-in methods — no pipeline changes
// required.
//
// Build & run:  ./build/examples/custom_method

#include <cmath>
#include <cstdio>
#include <iostream>

#include "tfb/optimize/nelder_mead.h"
#include "tfb/tfb.h"

namespace {

using namespace tfb;

// A user-defined method: blends the seasonal-naive forecast with the
// recent level, with a data-fitted blend weight.
class SeasonalBlendForecaster : public methods::Forecaster {
 public:
  std::string name() const override { return "SeasonalBlend"; }

  void Fit(const ts::TimeSeries& train) override {
    period_ = train.seasonal_period() > 0
                  ? train.seasonal_period()
                  : ts::DefaultSeasonalPeriod(train.frequency());
    // Fit the blend weight by one-step error on the training tail.
    const double best = optimize::GoldenSection(
        [&](double w) { return TailError(train, w); }, 0.0, 1.0);
    weight_ = best;
  }

  ts::TimeSeries Forecast(const ts::TimeSeries& history,
                          std::size_t horizon) override {
    const std::size_t t = history.length();
    const std::size_t p = period_ <= t && period_ > 0 ? period_ : 1;
    linalg::Matrix out(horizon, history.num_variables());
    for (std::size_t v = 0; v < history.num_variables(); ++v) {
      // Recent level: mean of the last period.
      double level = 0.0;
      for (std::size_t i = t - p; i < t; ++i) level += history.at(i, v);
      level /= static_cast<double>(p);
      for (std::size_t h = 0; h < horizon; ++h) {
        const double seasonal = history.at(t - p + (h % p), v);
        out(h, v) = weight_ * seasonal + (1.0 - weight_) * level;
      }
    }
    return ts::TimeSeries(std::move(out));
  }

  bool RefitPerWindow() const override { return true; }

 private:
  double TailError(const ts::TimeSeries& train, double w) const {
    const std::size_t t = train.length();
    const std::size_t p = period_ <= t / 2 && period_ > 0 ? period_ : 1;
    double err = 0.0;
    for (std::size_t i = t / 2; i < t; ++i) {
      for (std::size_t v = 0; v < train.num_variables(); ++v) {
        double level = 0.0;
        for (std::size_t j = i - p; j < i; ++j) level += train.at(j, v);
        level /= static_cast<double>(p);
        const double pred =
            w * train.at(i - p, v) + (1.0 - w) * level;
        err += std::fabs(pred - train.at(i, v));
      }
    }
    return err;
  }

  std::size_t period_ = 1;
  double weight_ = 0.5;
};

}  // namespace

int main() {
  std::printf("=== Universal Interface: benchmarking a custom method ===\n\n");
  auto profile = *datagen::FindProfile("NN5");  // daily banking withdrawals
  profile.length = 780;
  profile.spec.factor_spec.length = 780;
  profile.dim = 6;
  profile.spec.num_variables = 6;
  const ts::TimeSeries series = datagen::GenerateDataset(profile, 5);

  // The custom method enters the evaluation exactly like built-ins: as a
  // factory. Everything downstream (splits, normalization, strategies,
  // metrics) is identical for all contenders — the fairness guarantee.
  eval::RollingOptions options;
  options.split = profile.split;
  options.max_windows = 5;
  options.metrics = {eval::Metric::kMae, eval::Metric::kSmape};

  struct Contender {
    std::string name;
    methods::ForecasterFactory factory;
  };
  std::vector<Contender> contenders;
  contenders.push_back({"SeasonalBlend(custom)", [] {
                          return std::make_unique<SeasonalBlendForecaster>();
                        }});
  for (const char* builtin : {"SeasonalNaive", "Theta", "NLinear"}) {
    auto config = pipeline::MakeMethod(
        builtin, pipeline::MethodParams{.horizon = 14, .train_epochs = 12});
    contenders.push_back({builtin, config->factory});
  }

  std::printf("%-24s %-10s %-10s %s\n", "method", "mae", "smape", "windows");
  for (const auto& contender : contenders) {
    const eval::EvalResult r =
        eval::RollingForecastEvaluate(contender.factory, series, 14, options);
    std::printf("%-24s %-10.4f %-10.3f %zu\n", contender.name.c_str(),
                r.metrics.at(eval::Metric::kMae),
                r.metrics.at(eval::Metric::kSmape), r.num_windows);
  }
  return 0;
}
