// Scenario: "which forecaster should I use for MY data?"
//
// The paper's key practical finding is that method choice should follow the
// dataset's characteristics (Section 5.3). This example characterizes three
// very different series — a trending economic index, a seasonal electricity
// load, and a shifting stock series — applies the paper's selection hints,
// and then verifies the recommendation empirically with the pipeline.
//
// Build & run:  ./build/examples/method_selection

#include <cstdio>

#include "tfb/tfb.h"

namespace {

using namespace tfb;

// The paper's Section 5.3 guidance as a tiny rule base.
std::string Recommend(const characterization::Characteristics& c) {
  if (c.trend > 0.8 || std::abs(c.shifting - 0.5) > 0.15) {
    return "NLinear";  // linear class excels on trend/shift
  }
  if (c.correlation > 1.3) {
    return "CrossAttention";  // exploit channel dependence
  }
  if (c.seasonality > 0.6) {
    return "PatchAttention";  // attention class excels on seasonality
  }
  return "LinearRegression";  // strong cheap default elsewhere
}

void Analyze(const std::string& dataset) {
  auto profile = *datagen::FindProfile(dataset);
  profile.length = std::min<std::size_t>(profile.length, 900);
  profile.spec.factor_spec.length = profile.length;
  profile.dim = std::min<std::size_t>(profile.dim, 6);
  profile.spec.num_variables = profile.dim;
  if (profile.spec.factor_spec.period * 6 > profile.length) {
    profile.spec.factor_spec.period = profile.length / 12;
  }
  const ts::TimeSeries series = datagen::GenerateDataset(profile);
  const auto c = characterization::Characterize(series, 0, 3);
  const std::string pick = Recommend(c);
  std::printf("%s\n  %s\n  recommendation: %s\n", dataset.c_str(),
              characterization::ToString(c).c_str(), pick.c_str());

  // Verify against a generic baseline (SeasonalNaive) and a deliberately
  // mismatched method.
  const std::string mismatched =
      pick == "NLinear" ? "PatchAttention" : "NLinear";
  pipeline::BenchmarkRunner runner;
  for (const std::string& method :
       {pick, mismatched, std::string("SeasonalNaive")}) {
    pipeline::BenchmarkTask task;
    task.dataset = dataset;
    task.series = series;
    task.method = method;
    task.horizon = 12;
    task.params.train_epochs = 12;
    task.rolling.split = profile.split;
    task.rolling.max_windows = 4;
    const pipeline::ResultRow row = runner.RunOne(task);
    std::printf("  %-16s mae=%.4f%s\n", method.c_str(),
                row.metrics.at(eval::Metric::kMae),
                method == pick ? "   <- recommended" : "");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Characteristic-driven method selection ===\n\n");
  Analyze("FRED-MD");      // strong trend -> linear class
  Analyze("Electricity");  // strong seasonality -> attention class
  Analyze("NYSE");         // strong shifting -> linear class
  return 0;
}
