// Scenario: day-ahead forecasting for a solar plant operator.
//
// The intro's energy use case: given a (synthetic) solar-generation feed,
// produce rolling day-ahead forecasts, compare a cheap statistical model
// against a deep miniature under the paper's exact evaluation protocol, and
// export the per-method results as CSV for downstream dashboards.
//
// Build & run:  ./build/examples/energy_rolling

#include <cstdio>
#include <iostream>

#include "tfb/tfb.h"

int main() {
  using namespace tfb;
  std::printf("=== Energy scenario: rolling day-ahead solar forecasts ===\n\n");

  // The Solar profile: 48 steps per (scaled) day, strongly seasonal,
  // stationary — exactly the regime where seasonal statistical models are
  // hard to beat (paper Figure 8: Solar is the stationarity extreme).
  auto profile = *datagen::FindProfile("Solar");
  profile.length = 1400;
  profile.spec.factor_spec.length = 1400;
  profile.dim = 5;
  profile.spec.num_variables = 5;
  const ts::TimeSeries series = datagen::GenerateDataset(profile, 21);
  const std::size_t day = series.seasonal_period();  // 48 scaled steps

  std::vector<pipeline::BenchmarkTask> tasks;
  for (const char* method :
       {"SeasonalNaive", "ETS", "KalmanFilter", "LinearRegression",
        "DLinear", "PatchAttention"}) {
    pipeline::BenchmarkTask task;
    task.dataset = "Solar";
    task.series = series;
    task.method = method;
    task.horizon = day;  // day-ahead
    task.params.train_epochs = 15;
    task.rolling.split = profile.split;
    task.rolling.stride = day;  // one forecast per day
    task.rolling.max_windows = 4;
    task.rolling.metrics = {eval::Metric::kMae, eval::Metric::kRmse,
                            eval::Metric::kWape};
    tasks.push_back(std::move(task));
  }
  const auto rows = pipeline::BenchmarkRunner().Run(tasks);
  report::PrintTable(std::cout, rows,
                     {eval::Metric::kMae, eval::Metric::kRmse,
                      eval::Metric::kWape});

  const std::string csv = "solar_day_ahead_results.csv";
  if (report::WriteCsv(csv, rows,
                       {eval::Metric::kMae, eval::Metric::kRmse,
                        eval::Metric::kWape})) {
    std::printf("\nwrote %s\n", csv.c_str());
  }

  // Show one actual forecast the operator would act on.
  const auto config = pipeline::MakeMethod(
      "DLinear", pipeline::MethodParams{.horizon = day, .train_epochs = 15});
  auto model = config->factory();
  const ts::Split split = ChronologicalSplit(series, profile.split);
  model->Fit(series.Slice(0, split.val_end));
  const ts::TimeSeries forecast =
      model->Forecast(series.Slice(0, split.val_end), day);
  std::printf("\nnext-day forecast, plant 0, first 8 steps: ");
  for (std::size_t h = 0; h < 8; ++h) {
    std::printf("%.2f ", forecast.at(h, 0));
  }
  std::printf("...\n");
  return 0;
}
