// Reproduces Table 2 + Figure 4: the "Drop Last" batching bias. With
// drop-last ON, the evaluated test-sample set depends on the batch size, so
// the reported MAE changes with an implementation detail; with TFB's fair
// default (drop-last OFF) it does not.

#include "bench_common.h"

int main() {
  using namespace tfb;
  std::printf("=== Table 2: impact of batch size with \"drop last\" ===\n");
  std::printf(
      "SCALING: ETTh2 profile at 900 points, horizon 24 (paper: 336),\n"
      "stride-1 rolling windows; batch sizes scaled to the window count.\n\n");

  const auto profile = bench::ScaledProfile("ETTh2");
  const ts::TimeSeries series = datagen::GenerateDataset(profile);
  const std::size_t horizon = 24;

  // Paper columns: PatchTST, DLinear, FEDformer.
  const std::vector<std::string> methods = {"PatchAttention", "DLinear",
                                            "FrequencyLinear"};
  const std::vector<std::size_t> batch_sizes = {1, 16, 32, 64, 96, 128};

  std::printf("%-8s", "batch");
  for (const auto& m : methods) std::printf("%-18s", m.c_str());
  std::printf("windows\n");

  std::vector<std::vector<double>> table;
  for (const std::size_t batch : batch_sizes) {
    std::printf("%-8zu", batch);
    std::vector<double> row;
    std::size_t windows = 0;
    for (const auto& method : methods) {
      const auto config =
          pipeline::MakeMethod(method, bench::FastParams(horizon));
      eval::RollingOptions options;
      options.split = profile.split;
      options.stride = 1;  // dense test samples, like batched DL testing
      options.batch_size = batch;
      options.drop_last = true;  // the biased setting under study
      const eval::EvalResult r = eval::RollingForecastEvaluate(
          config->factory, series, horizon, options);
      std::printf("%-18.4f", r.metrics.at(eval::Metric::kMae));
      row.push_back(r.metrics.at(eval::Metric::kMae));
      windows = r.num_windows;
    }
    std::printf("%zu\n", windows);
    table.push_back(std::move(row));
  }

  // Control: with drop_last = false the result is batch-size independent.
  std::printf("\nControl (drop_last = OFF, TFB default):\n%-8s", "batch");
  for (const auto& m : methods) std::printf("%-18s", m.c_str());
  std::printf("\n");
  std::vector<double> reference;
  bool fair_constant = true;
  for (const std::size_t batch : {1, 64, 128}) {
    std::printf("%-8d", static_cast<int>(batch));
    for (std::size_t m = 0; m < methods.size(); ++m) {
      const auto config =
          pipeline::MakeMethod(methods[m], bench::FastParams(horizon));
      eval::RollingOptions options;
      options.split = profile.split;
      options.stride = 1;
      options.batch_size = batch;
      options.drop_last = false;
      const eval::EvalResult r = eval::RollingForecastEvaluate(
          config->factory, series, horizon, options);
      const double mae = r.metrics.at(eval::Metric::kMae);
      std::printf("%-18.4f", mae);
      if (reference.size() <= m) {
        reference.push_back(mae);
      } else if (std::abs(reference[m] - mae) > 1e-12) {
        fair_constant = false;
      }
    }
    std::printf("\n");
  }

  bool biased_varies = false;
  for (std::size_t m = 0; m < methods.size(); ++m) {
    for (std::size_t b = 1; b < table.size(); ++b) {
      if (std::abs(table[b][m] - table[0][m]) > 1e-9) biased_varies = true;
    }
  }
  std::printf(
      "\nShape check: drop-last results vary with batch size: %s; "
      "fair results constant: %s (paper: yes / yes)\n",
      biased_varies ? "yes" : "no", fair_constant ? "yes" : "no");
  return 0;
}
