// Micro-benchmarks of the computational substrates that every experiment
// runs on: metrics, FFT/ACF, loess, STL, characterization, matmul, and the
// CART split scan. Not a paper table — the engineering baseline for the
// pipeline's own cost.

#include <benchmark/benchmark.h>

#include <cmath>

#include "tfb/characterization/adf.h"
#include "tfb/characterization/catch22.h"
#include "tfb/characterization/features.h"
#include "tfb/eval/metrics.h"
#include "tfb/fft/fft.h"
#include "tfb/linalg/solve.h"
#include "tfb/stats/rng.h"
#include "tfb/stl/loess.h"
#include "tfb/stl/stl.h"

namespace {

using namespace tfb;

std::vector<double> Signal(std::size_t n, std::uint64_t seed = 1) {
  stats::Rng rng(seed);
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = std::sin(2.0 * M_PI * t / 24.0) + 0.01 * t +
           rng.Gaussian(0.0, 0.3);
  }
  return x;
}

void BM_MetricsAllEight(benchmark::State& state) {
  const auto f = Signal(state.range(0), 1);
  const auto y = Signal(state.range(0), 2);
  eval::MetricContext ctx;
  ctx.train = {Signal(256, 3)};
  ctx.seasonality = 24;
  for (auto _ : state) {
    double total = 0.0;
    for (eval::Metric m : eval::AllMetrics()) {
      total += eval::ComputeMetric(m, f, y, ctx);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_MetricsAllEight)->Arg(96)->Arg(720);

void BM_AutocorrelationFft(benchmark::State& state) {
  const auto x = Signal(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft::AutocorrelationFft(x).data());
  }
}
BENCHMARK(BM_AutocorrelationFft)->Arg(1024)->Arg(8192);

void BM_Loess(benchmark::State& state) {
  const auto x = Signal(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stl::LoessSmooth(x, 25, 1).data());
  }
}
BENCHMARK(BM_Loess)->Arg(512)->Arg(2048);

void BM_StlDecompose(benchmark::State& state) {
  const auto x = Signal(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stl::StlDecompose(x, 24).trend.data());
  }
}
BENCHMARK(BM_StlDecompose)->Arg(512)->Arg(2048);

void BM_AdfTest(benchmark::State& state) {
  const auto x = Signal(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(characterization::AdfTest(x).statistic);
  }
}
BENCHMARK(BM_AdfTest)->Arg(512)->Arg(2048);

void BM_Catch22(benchmark::State& state) {
  const auto x = Signal(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(characterization::Catch22(x)[0]);
  }
}
BENCHMARK(BM_Catch22)->Arg(512)->Arg(2048);

void BM_ShiftingValue(benchmark::State& state) {
  const auto x = Signal(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(characterization::ShiftingValue(x));
  }
}
BENCHMARK(BM_ShiftingValue)->Arg(1024);

void BM_MatMul(benchmark::State& state) {
  const std::size_t n = state.range(0);
  stats::Rng rng(4);
  linalg::Matrix a(n, n);
  linalg::Matrix b(n, n);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.Gaussian();
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::MatMul(a, b).data());
  }
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(256);

void BM_LeastSquares(benchmark::State& state) {
  const std::size_t n = 2048;
  const std::size_t k = state.range(0);
  stats::Rng rng(5);
  linalg::Matrix x(n, k);
  linalg::Vector y(n);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Gaussian();
  for (std::size_t i = 0; i < n; ++i) y[i] = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::LeastSquares(x, y, 1e-6)->data());
  }
}
BENCHMARK(BM_LeastSquares)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
