// Micro-benchmarks of the computational substrates that every experiment
// runs on: metrics, FFT/ACF, loess, STL, characterization, matmul, and the
// CART split scan. Not a paper table — the engineering baseline for the
// pipeline's own cost.
//
// main() first times the GEMM kernel tiers head-to-head — naive reference
// vs blocked/packed vs blocked+thread-pool — at 64/256/1024 and writes
// BENCH_kernels.json (the checked-in artifact of DESIGN.md "Compute
// kernels"), then runs the google-benchmark suite as usual.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>

#include "tfb/characterization/adf.h"
#include "tfb/characterization/catch22.h"
#include "tfb/characterization/features.h"
#include "tfb/eval/metrics.h"
#include "tfb/fft/fft.h"
#include "tfb/linalg/gemm.h"
#include "tfb/linalg/solve.h"
#include "tfb/parallel/thread_pool.h"
#include "tfb/stats/rng.h"
#include "tfb/stl/loess.h"
#include "tfb/stl/stl.h"

namespace {

using namespace tfb;

std::vector<double> Signal(std::size_t n, std::uint64_t seed = 1) {
  stats::Rng rng(seed);
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = std::sin(2.0 * M_PI * t / 24.0) + 0.01 * t +
           rng.Gaussian(0.0, 0.3);
  }
  return x;
}

void BM_MetricsAllEight(benchmark::State& state) {
  const auto f = Signal(state.range(0), 1);
  const auto y = Signal(state.range(0), 2);
  eval::MetricContext ctx;
  ctx.train = {Signal(256, 3)};
  ctx.seasonality = 24;
  for (auto _ : state) {
    double total = 0.0;
    for (eval::Metric m : eval::AllMetrics()) {
      total += eval::ComputeMetric(m, f, y, ctx);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_MetricsAllEight)->Arg(96)->Arg(720);

void BM_AutocorrelationFft(benchmark::State& state) {
  const auto x = Signal(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft::AutocorrelationFft(x).data());
  }
}
BENCHMARK(BM_AutocorrelationFft)->Arg(1024)->Arg(8192);

void BM_Loess(benchmark::State& state) {
  const auto x = Signal(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stl::LoessSmooth(x, 25, 1).data());
  }
}
BENCHMARK(BM_Loess)->Arg(512)->Arg(2048);

void BM_StlDecompose(benchmark::State& state) {
  const auto x = Signal(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stl::StlDecompose(x, 24).trend.data());
  }
}
BENCHMARK(BM_StlDecompose)->Arg(512)->Arg(2048);

void BM_AdfTest(benchmark::State& state) {
  const auto x = Signal(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(characterization::AdfTest(x).statistic);
  }
}
BENCHMARK(BM_AdfTest)->Arg(512)->Arg(2048);

void BM_Catch22(benchmark::State& state) {
  const auto x = Signal(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(characterization::Catch22(x)[0]);
  }
}
BENCHMARK(BM_Catch22)->Arg(512)->Arg(2048);

void BM_ShiftingValue(benchmark::State& state) {
  const auto x = Signal(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(characterization::ShiftingValue(x));
  }
}
BENCHMARK(BM_ShiftingValue)->Arg(1024);

void BM_MatMul(benchmark::State& state) {
  const std::size_t n = state.range(0);
  stats::Rng rng(4);
  linalg::Matrix a(n, n);
  linalg::Matrix b(n, n);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.Gaussian();
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::MatMul(a, b).data());
  }
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(256);

void BM_LeastSquares(benchmark::State& state) {
  const std::size_t n = 2048;
  const std::size_t k = state.range(0);
  stats::Rng rng(5);
  linalg::Matrix x(n, k);
  linalg::Vector y(n);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Gaussian();
  for (std::size_t i = 0; i < n; ++i) y[i] = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::LeastSquares(x, y, 1e-6)->data());
  }
}
BENCHMARK(BM_LeastSquares)->Arg(16)->Arg(64);

// ---------------------------------------------------------------------------
// GEMM kernel tiers → BENCH_kernels.json

linalg::Matrix RandomMat(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  stats::Rng rng(seed);
  linalg::Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Gaussian();
  return m;
}

linalg::Matrix RandomSquare(std::size_t n, std::uint64_t seed) {
  return RandomMat(n, n, seed);
}

/// Best-of wall time: repeats `fn` until `min_seconds` total (at least
/// twice) and returns the fastest single run — the standard estimator for
/// the noise floor of a shared machine.
template <typename Fn>
double BestSeconds(Fn&& fn, double min_seconds) {
  using Clock = std::chrono::steady_clock;
  fn();  // warm-up: page in buffers, spin up pool workers
  double best = 1e300;
  double total = 0.0;
  std::size_t reps = 0;
  while (total < min_seconds || reps < 2) {
    const auto t0 = Clock::now();
    fn();
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    best = std::min(best, dt);
    total += dt;
    ++reps;
  }
  return best;
}

struct KernelRow {
  std::size_t n;
  double naive_s, blocked_s, parallel_s;
};

struct ScalingRow {
  std::size_t threads;
  double seconds;
};

double Gflops(std::size_t n, double seconds) {
  return 2.0 * static_cast<double>(n) * static_cast<double>(n) *
         static_cast<double>(n) / seconds / 1e9;
}

void WriteKernelComparisonJson() {
  using linalg::kernel::Gemm;
  using linalg::kernel::GemmReference;
  using linalg::kernel::GemmSingleThread;
  using linalg::kernel::View;

  std::printf("=== GEMM kernel tiers (naive / blocked / blocked+pool) ===\n");
  std::printf("hardware_concurrency=%zu pool_workers=%zu\n\n",
              parallel::HardwareThreads(),
              parallel::ThreadPool::Default().workers());

  const std::size_t sizes[] = {64, 256, 1024};
  KernelRow rows[3];
  std::size_t row_count = 0;
  for (const std::size_t n : sizes) {
    const linalg::Matrix a = RandomSquare(n, 2 * n + 1);
    const linalg::Matrix b = RandomSquare(n, 2 * n + 2);
    linalg::Matrix out(n, n);
    const View va{a.data(), n, 1};
    const View vb{b.data(), n, 1};
    // Budget scales with n so 64 isn't all harness noise and 1024's naive
    // leg doesn't take minutes.
    const double budget = n >= 1024 ? 2.0 : 0.25;
    KernelRow row;
    row.n = n;
    row.naive_s = BestSeconds(
        [&] { GemmReference(n, n, n, va, vb, out.data()); }, budget);
    row.blocked_s = BestSeconds(
        [&] { GemmSingleThread(n, n, n, va, vb, out.data()); }, budget);
    row.parallel_s =
        BestSeconds([&] { Gemm(n, n, n, va, vb, out.data()); }, budget);
    rows[row_count++] = row;
    std::printf(
        "n=%-5zu naive %8.2f ms (%5.2f GF/s) | blocked %8.2f ms (%5.2f "
        "GF/s, %4.1fx) | +pool %8.2f ms (%5.2f GF/s, %4.1fx)\n",
        n, row.naive_s * 1e3, Gflops(n, row.naive_s), row.blocked_s * 1e3,
        Gflops(n, row.blocked_s), row.naive_s / row.blocked_s,
        row.parallel_s * 1e3, Gflops(n, row.parallel_s),
        row.naive_s / row.parallel_s);
  }

  // Thread scaling at 1024: resize the shared pool through 1/2/4 lanes.
  // On hosts with fewer cores than lanes the extra threads timeshare one
  // core — the numbers below are honest for whatever machine ran this.
  const std::size_t kScalingN = 1024;
  const linalg::Matrix a = RandomSquare(kScalingN, 77);
  const linalg::Matrix b = RandomSquare(kScalingN, 78);
  linalg::Matrix out(kScalingN, kScalingN);
  const View va{a.data(), kScalingN, 1};
  const View vb{b.data(), kScalingN, 1};
  ScalingRow scaling[3];
  std::size_t scaling_count = 0;
  std::printf("\nscaling at n=%zu:\n", kScalingN);
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}}) {
    parallel::ThreadPool::Default().Resize(lanes - 1);
    ScalingRow row;
    row.threads = lanes;
    row.seconds = BestSeconds(
        [&] { Gemm(kScalingN, kScalingN, kScalingN, va, vb, out.data()); },
        2.0);
    scaling[scaling_count++] = row;
    std::printf("  threads=%zu  %8.2f ms (%5.2f GF/s, %4.2fx vs 1 thread)\n",
                lanes, row.seconds * 1e3, Gflops(kScalingN, row.seconds),
                scaling[0].seconds / row.seconds);
  }
  parallel::ThreadPool::Default().Resize(parallel::HardwareThreads() - 1);

  // Dispatch paths: the same blocked single-thread kernel, driven by each
  // micro-kernel this host can run. All paths are bit-identical — this
  // table is purely the speed story of the SIMD dispatch.
  using linalg::kernel::KernelPath;
  const KernelPath original_path = linalg::kernel::ActiveKernelPath();
  struct DispatchRow {
    KernelPath path;
    double s256, s1024;
  };
  DispatchRow dispatch[3];
  std::size_t dispatch_count = 0;
  {
    const linalg::Matrix a256 = RandomSquare(256, 91);
    const linalg::Matrix b256 = RandomSquare(256, 92);
    const linalg::Matrix a1024 = RandomSquare(1024, 93);
    const linalg::Matrix b1024 = RandomSquare(1024, 94);
    linalg::Matrix out256(256, 256);
    linalg::Matrix out1024(1024, 1024);
    std::printf("\ndispatch paths (blocked single-thread):\n");
    for (const KernelPath path :
         {KernelPath::kScalar, KernelPath::kAvx2, KernelPath::kNeon}) {
      if (!linalg::kernel::KernelPathAvailable(path)) continue;
      linalg::kernel::SetKernelPath(path);
      DispatchRow row;
      row.path = path;
      row.s256 = BestSeconds(
          [&] {
            GemmSingleThread(256, 256, 256, {a256.data(), 256, 1},
                             {b256.data(), 256, 1}, out256.data());
          },
          0.25);
      row.s1024 = BestSeconds(
          [&] {
            GemmSingleThread(1024, 1024, 1024, {a1024.data(), 1024, 1},
                             {b1024.data(), 1024, 1}, out1024.data());
          },
          1.0);
      dispatch[dispatch_count++] = row;
      std::printf(
          "  %-7s n=256 %8.2f ms (%5.2f GF/s) | n=1024 %8.2f ms "
          "(%5.2f GF/s, %4.2fx vs scalar)\n",
          linalg::kernel::KernelPathName(path), row.s256 * 1e3,
          Gflops(256, row.s256), row.s1024 * 1e3, Gflops(1024, row.s1024),
          dispatch[0].s1024 / row.s1024);
    }
    linalg::kernel::SetKernelPath(original_path);
  }

  // Batched small GEMM: many tiny uniform-shape products — the DL inner
  // loop (GRU gate steps, attention windows) — looped Gemm vs one
  // GemmBatch call. The batch amortizes dispatch/metrics/workspace cost
  // and parallelizes across items; on a 1-core host the parallel leg
  // timeshares, so the honest win there is the amortization alone.
  struct BatchRow {
    std::size_t m, n, k, count;
    double looped_s, batched_s;
  };
  BatchRow batch_rows[2];
  std::size_t batch_count = 0;
  const struct {
    std::size_t m, n, k, count;
  } batch_shapes[] = {{32, 32, 32, 256}, {16, 64, 16, 256}};
  std::printf("\nbatched small GEMM (looped Gemm vs GemmBatch):\n");
  for (const auto& shape : batch_shapes) {
    std::vector<linalg::Matrix> as, bs;
    as.reserve(shape.count);
    bs.reserve(shape.count);
    for (std::size_t i = 0; i < shape.count; ++i) {
      as.push_back(RandomMat(shape.m, shape.k, 200 + 2 * i));
      bs.push_back(RandomMat(shape.k, shape.n, 201 + 2 * i));
    }
    std::vector<double> out(shape.count * shape.m * shape.n);
    std::vector<linalg::kernel::GemmBatchItem> items(shape.count);
    for (std::size_t i = 0; i < shape.count; ++i) {
      items[i] = {{as[i].data(), shape.k, 1},
                  {bs[i].data(), shape.n, 1},
                  out.data() + i * shape.m * shape.n};
    }
    BatchRow row;
    row.m = shape.m;
    row.n = shape.n;
    row.k = shape.k;
    row.count = shape.count;
    row.looped_s = BestSeconds(
        [&] {
          for (const auto& item : items) {
            Gemm(shape.m, shape.n, shape.k, item.a, item.b, item.out);
          }
        },
        0.25);
    row.batched_s = BestSeconds(
        [&] { linalg::kernel::GemmBatch(shape.m, shape.n, shape.k, items); },
        0.25);
    batch_rows[batch_count++] = row;
    std::printf(
        "  %zux%zux%zu x%zu  looped %8.3f ms | batched %8.3f ms (%4.2fx)\n",
        row.m, row.n, row.k, row.count, row.looped_s * 1e3,
        row.batched_s * 1e3, row.looped_s / row.batched_s);
  }

  // Fused catch22: the single-pass engine vs the retained per-feature
  // reference (every feature recomputing its own z-score/ACF/periodogram).
  struct FusedRow {
    std::size_t n;
    double reference_s, fused_s;
  };
  FusedRow fused_rows[2];
  std::size_t fused_count = 0;
  std::printf("\nfused catch22 (single-pass vs 22-pass reference):\n");
  for (const std::size_t n : {std::size_t{1000}, std::size_t{10000}}) {
    const auto x = Signal(n, 9);
    FusedRow row;
    row.n = n;
    row.reference_s = BestSeconds(
        [&] {
          benchmark::DoNotOptimize(
              characterization::Catch22Reference(x)[0]);
        },
        0.5);
    row.fused_s = BestSeconds(
        [&] { benchmark::DoNotOptimize(characterization::Catch22(x)[0]); },
        0.25);
    fused_rows[fused_count++] = row;
    std::printf("  n=%-6zu reference %8.2f ms | fused %8.2f ms (%4.2fx)\n",
                n, row.reference_s * 1e3, row.fused_s * 1e3,
                row.reference_s / row.fused_s);
  }

  std::FILE* f = std::fopen("BENCH_kernels.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_kernels.json\n");
    return;
  }
  std::fprintf(f,
               "{\"hardware_concurrency\": %zu,\n \"sizes\": [",
               parallel::HardwareThreads());
  for (std::size_t i = 0; i < row_count; ++i) {
    const KernelRow& r = rows[i];
    std::fprintf(
        f,
        "%s\n  {\"n\": %zu,\n"
        "   \"naive\": {\"seconds\": %.6f, \"gflops\": %.3f},\n"
        "   \"blocked\": {\"seconds\": %.6f, \"gflops\": %.3f, "
        "\"speedup\": %.2f},\n"
        "   \"blocked_parallel\": {\"seconds\": %.6f, \"gflops\": %.3f, "
        "\"speedup\": %.2f}}",
        i == 0 ? "" : ",", r.n, r.naive_s, Gflops(r.n, r.naive_s),
        r.blocked_s, Gflops(r.n, r.blocked_s), r.naive_s / r.blocked_s,
        r.parallel_s, Gflops(r.n, r.parallel_s), r.naive_s / r.parallel_s);
  }
  std::fprintf(f, "],\n \"scaling_1024\": [");
  for (std::size_t i = 0; i < scaling_count; ++i) {
    const ScalingRow& r = scaling[i];
    std::fprintf(f,
                 "%s\n  {\"threads\": %zu, \"seconds\": %.6f, \"gflops\": "
                 "%.3f, \"speedup_vs_1\": %.2f}",
                 i == 0 ? "" : ",", r.threads, r.seconds,
                 Gflops(kScalingN, r.seconds),
                 scaling[0].seconds / r.seconds);
  }
  std::fprintf(f, "],\n \"active_path\": \"%s\",\n \"dispatch_paths\": [",
               linalg::kernel::KernelPathName(original_path));
  for (std::size_t i = 0; i < dispatch_count; ++i) {
    const DispatchRow& r = dispatch[i];
    std::fprintf(
        f,
        "%s\n  {\"path\": \"%s\",\n"
        "   \"n256\": {\"seconds\": %.6f, \"gflops\": %.3f},\n"
        "   \"n1024\": {\"seconds\": %.6f, \"gflops\": %.3f, "
        "\"speedup_vs_scalar\": %.2f}}",
        i == 0 ? "" : ",", linalg::kernel::KernelPathName(r.path), r.s256,
        Gflops(256, r.s256), r.s1024, Gflops(1024, r.s1024),
        dispatch[0].s1024 / r.s1024);
  }
  std::fprintf(f, "],\n \"gemm_batch\": [");
  for (std::size_t i = 0; i < batch_count; ++i) {
    const BatchRow& r = batch_rows[i];
    std::fprintf(f,
                 "%s\n  {\"m\": %zu, \"n\": %zu, \"k\": %zu, \"count\": %zu,\n"
                 "   \"looped\": {\"seconds\": %.6f},\n"
                 "   \"batched\": {\"seconds\": %.6f, \"speedup\": %.2f}}",
                 i == 0 ? "" : ",", r.m, r.n, r.k, r.count, r.looped_s,
                 r.batched_s, r.looped_s / r.batched_s);
  }
  std::fprintf(f, "],\n \"catch22_fused\": [");
  for (std::size_t i = 0; i < fused_count; ++i) {
    const FusedRow& r = fused_rows[i];
    std::fprintf(f,
                 "%s\n  {\"n\": %zu, \"reference_seconds\": %.6f, "
                 "\"fused_seconds\": %.6f, \"speedup\": %.2f}",
                 i == 0 ? "" : ",", r.n, r.reference_s, r.fused_s,
                 r.reference_s / r.fused_s);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_kernels.json\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  WriteKernelComparisonJson();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
