// Reproduces Figure 2: data-domain coverage of TFB versus existing
// multivariate benchmarks. Other benchmarks' dataset lists come from their
// publications (TSlib, LTSF-Linear, BasicTS, BasicTS+); TFB's from the
// registry.

#include <map>
#include <set>

#include "bench_common.h"

int main() {
  using namespace tfb;
  std::printf("=== Figure 2: domains covered by MTSF benchmarks ===\n\n");

  // Published dataset rosters of the compared benchmarks (names resolve to
  // our Table 5 registry entries).
  const std::map<std::string, std::vector<std::string>> benchmarks = {
      {"TSlib",
       {"ETTh1", "ETTh2", "ETTm1", "ETTm2", "Electricity", "Traffic",
        "Weather", "Exchange", "ILI"}},
      {"LTSF-Linear",
       {"ETTh1", "ETTh2", "ETTm1", "ETTm2", "Electricity", "Traffic",
        "Weather", "Exchange", "ILI"}},
      {"BasicTS",
       {"METR-LA", "PEMS-BAY", "PEMS04", "PEMS08", "Electricity",
        "Traffic"}},
      {"BasicTS+",
       {"METR-LA", "PEMS-BAY", "PEMS04", "PEMS08", "Electricity", "Traffic",
        "ETTh1", "ETTm1", "Weather", "Exchange"}},
  };

  auto report = [](const std::string& name,
                   const std::vector<std::string>& datasets) {
    std::set<std::string> domains;
    for (const auto& d : datasets) {
      const auto profile = datagen::FindProfile(d);
      if (profile) domains.insert(ts::DomainName(profile->domain));
    }
    std::printf("%-12s datasets=%-3zu domains=%zu (", name.c_str(),
                datasets.size(), domains.size());
    bool first = true;
    for (const auto& d : domains) {
      std::printf("%s%s", first ? "" : ", ", d.c_str());
      first = false;
    }
    std::printf(")\n");
    return domains.size();
  };

  std::size_t max_other = 0;
  for (const auto& [name, datasets] : benchmarks) {
    max_other = std::max(max_other, report(name, datasets));
  }

  std::vector<std::string> tfb_datasets;
  for (const auto& p : datagen::MultivariateProfiles()) {
    tfb_datasets.push_back(p.name);
  }
  const std::size_t tfb_domains = report("TFB", tfb_datasets);

  std::printf(
      "\nShape check: TFB covers %zu domains vs <=%zu for prior benchmarks "
      "(paper: 10 vs <=5)\n",
      tfb_domains, max_other);
  return 0;
}
