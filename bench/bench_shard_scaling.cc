// Sharded-execution scaling bench: runs a cheap-method grid through the
// ShardCoordinator at workers=1/2/4/8 and reports tasks/sec per worker
// count, the crash-recovery overhead (same grid with one worker killed
// mid-run by the fault injector), and the observability overhead of the
// sharded path (obs off vs on at workers=4, against the ≤2% budget of
// DESIGN.md "Observability").
//
// Emits BENCH_shard.json to the working directory:
//   {"tasks": N, "hardware_threads": H,
//    "single_process": {"seconds": ..., "tasks_per_second": ...},
//    "workers": [{"workers": W, "seconds": ..., "tasks_per_second": ...,
//                 "speedup_vs_workers_1": ...}, ...],
//    "recovery": {"workers": 4, "clean_seconds": ..., "killed_seconds": ...,
//                 "overhead_pct": ..., "worker_deaths": ...,
//                 "redispatches": ...},
//    "transport": {"workers": 4, "socketpair_seconds": ...,
//                  "tcp_loopback_seconds": ..., "tcp_overhead_pct": ...},
//    "obs": {"off_seconds": ..., "on_seconds": ..., "overhead_pct": ...}}
//
// Honesty note: on a single-core host (hardware_threads == 1, the CI
// container) worker processes time-share one CPU, so tasks/sec stays
// roughly flat across worker counts and the bench documents coordination
// overhead, not parallel speedup. The speedup column only becomes
// meaningful on multi-core hardware; the JSON carries hardware_threads so
// readers can tell which regime produced the numbers.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "tfb/pipeline/shard.h"
#include "tfb/stats/rng.h"

namespace {

using namespace tfb;
using Clock = std::chrono::steady_clock;

ts::TimeSeries SmallSeasonal(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = 3.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 12.0) +
           rng.Gaussian(0.0, 0.3);
  }
  ts::TimeSeries s = ts::TimeSeries::Univariate(std::move(x));
  s.set_seasonal_period(12);
  s.set_name("bench");
  return s;
}

std::vector<pipeline::BenchmarkTask> BuildGrid() {
  // 64 cheap-but-real tasks: per-task fit work must be non-trivial (as on
  // a real grid) or the fork/protocol machinery would dominate and the
  // scaling numbers would measure the coordinator, not the workload.
  std::vector<pipeline::BenchmarkTask> tasks;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (const char* method :
         {"Theta", "ETS", "LinearRegression", "SeasonalNaive"}) {
      for (const std::size_t horizon : {std::size_t{6}, std::size_t{12}}) {
        pipeline::BenchmarkTask task;
        task.dataset = "bench" + std::to_string(seed);
        task.series = SmallSeasonal(800, seed);
        task.method = method;
        task.horizon = horizon;
        tasks.push_back(std::move(task));
      }
    }
  }
  return tasks;
}

double Median(std::vector<double> v) {
  TFB_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

double RunSingleProcessSeconds(
    const std::vector<pipeline::BenchmarkTask>& tasks) {
  pipeline::RunnerOptions options;
  options.num_threads = 1;
  const auto start = Clock::now();
  const auto rows = pipeline::BenchmarkRunner(options).Run(tasks);
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (const auto& row : rows) {
    TFB_CHECK_MSG(row.ok, "bench task failed");
  }
  return seconds;
}

struct ShardLeg {
  double seconds = 0.0;
  pipeline::ShardRunStats stats;
};

ShardLeg RunShardedSeconds(const std::vector<pipeline::BenchmarkTask>& tasks,
                           std::size_t workers, int fault_kill_worker = -1,
                           pipeline::ShardTransport transport =
                               pipeline::ShardTransport::kSocketpair) {
  pipeline::RunnerOptions options;
  options.num_threads = 1;  // Each worker is single-threaded; the worker
                            // count is the parallelism knob under test.
  pipeline::ShardOptions shard;
  shard.num_workers = workers;
  shard.fault_kill_worker = fault_kill_worker;
  shard.transport = transport;
  pipeline::ShardCoordinator coordinator(options, shard);
  const auto start = Clock::now();
  const auto rows = coordinator.Run(tasks);
  ShardLeg leg;
  leg.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  leg.stats = coordinator.stats();
  for (const auto& row : rows) {
    TFB_CHECK_MSG(row.ok, "sharded bench task failed");
  }
  return leg;
}

}  // namespace

int main() {
  constexpr std::size_t kRepeats = 5;
  const unsigned hardware = std::thread::hardware_concurrency();
  const std::vector<pipeline::BenchmarkTask> tasks = BuildGrid();
  const double n_tasks = static_cast<double>(tasks.size());

  std::printf("=== Sharded execution scaling (tfb/pipeline/shard) ===\n");
  std::printf("grid: %zu tasks, hardware threads: %u, median of %zu runs\n\n",
              tasks.size(), hardware, kRepeats);
  if (hardware <= 1) {
    std::printf(
        "NOTE: single-core host — workers time-share one CPU, so tasks/sec\n"
        "stays roughly flat across worker counts. These numbers document\n"
        "coordination overhead, not parallel speedup.\n\n");
  }

  obs::SetEnabled(false);
  RunSingleProcessSeconds(tasks);  // Warm-up (method registry, page cache).

  std::vector<double> single_seconds;
  for (std::size_t i = 0; i < kRepeats; ++i) {
    single_seconds.push_back(RunSingleProcessSeconds(tasks));
  }
  const double single_s = Median(single_seconds);
  std::printf("%-28s %10.4fs %10.1f tasks/sec\n", "single process (baseline)",
              single_s, n_tasks / single_s);

  const std::size_t worker_counts[] = {1, 2, 4, 8};
  double seconds_by_workers[4] = {0, 0, 0, 0};
  for (std::size_t w = 0; w < 4; ++w) {
    std::vector<double> reps;
    for (std::size_t i = 0; i < kRepeats; ++i) {
      reps.push_back(RunShardedSeconds(tasks, worker_counts[w]).seconds);
    }
    seconds_by_workers[w] = Median(reps);
    std::printf("%-28s %10.4fs %10.1f tasks/sec  (%.2fx vs workers=1)\n",
                ("workers=" + std::to_string(worker_counts[w])).c_str(),
                seconds_by_workers[w], n_tasks / seconds_by_workers[w],
                seconds_by_workers[0] / seconds_by_workers[w]);
  }

  // Crash recovery: workers=4 with spawn 0 killed after its first
  // completed task. The shard is re-dispatched and a replacement worker
  // spawned; the overhead is the price of one worker death mid-run.
  std::vector<double> killed_seconds;
  pipeline::ShardRunStats killed_stats;
  for (std::size_t i = 0; i < kRepeats; ++i) {
    const ShardLeg leg = RunShardedSeconds(tasks, 4, /*fault_kill_worker=*/0);
    TFB_CHECK_MSG(leg.stats.worker_deaths >= 1, "fault injector did not fire");
    killed_seconds.push_back(leg.seconds);
    killed_stats = leg.stats;
  }
  const double clean4_s = seconds_by_workers[2];
  const double killed_s = Median(killed_seconds);
  const double recovery_pct = (killed_s / clean4_s - 1.0) * 100.0;
  std::printf("\n%-28s %10.4fs  (%+.2f%% vs clean workers=4; deaths=%zu "
              "redispatches=%zu)\n",
              "workers=4, one worker killed", killed_s, recovery_pct,
              killed_stats.worker_deaths, killed_stats.redispatches);

  // Transport comparison: the same grid at workers=4 over loopback TCP
  // (tasks marshalled in TASK frames, rows framed + CRC-checked) against
  // the inherited-socketpair baseline. The budget is ≤10% — on a loopback
  // the protocol cost is marshalling plus one extra syscall round-trip per
  // shard, not the network.
  std::vector<double> tcp_seconds_reps;
  for (std::size_t i = 0; i < kRepeats; ++i) {
    tcp_seconds_reps.push_back(
        RunShardedSeconds(tasks, 4, /*fault_kill_worker=*/-1,
                          pipeline::ShardTransport::kTcp)
            .seconds);
  }
  const double tcp_s = Median(tcp_seconds_reps);
  const double tcp_pct = (tcp_s / clean4_s - 1.0) * 100.0;
  std::printf("%-28s %10.4fs  (%+.2f%% vs socketpair workers=4, "
              "budget <=10%%)\n",
              "workers=4, tcp loopback", tcp_s, tcp_pct);

  // Observability overhead on the sharded path (metrics + shard stats
  // published per event-loop pass) against the ≤2% DESIGN.md budget.
  std::vector<double> obs_off, obs_on;
  for (std::size_t i = 0; i < kRepeats; ++i) {
    obs::SetEnabled(false);
    obs_off.push_back(RunShardedSeconds(tasks, 4).seconds);
    obs::SetEnabled(true);
    obs_on.push_back(RunShardedSeconds(tasks, 4).seconds);
  }
  obs::SetEnabled(false);
  const double obs_off_s = Median(obs_off);
  const double obs_on_s = Median(obs_on);
  const double obs_pct = (obs_on_s / obs_off_s - 1.0) * 100.0;
  std::printf("%-28s off=%.4fs on=%.4fs  (%+.2f%%, budget <=2%%)\n",
              "obs overhead (workers=4)", obs_off_s, obs_on_s, obs_pct);

  char json[2048];
  int off = std::snprintf(
      json, sizeof(json),
      "{\"tasks\": %zu, \"hardware_threads\": %u,\n"
      " \"single_process\": {\"seconds\": %.6f, \"tasks_per_second\": %.1f},\n"
      " \"workers\": [\n",
      tasks.size(), hardware, single_s, n_tasks / single_s);
  for (std::size_t w = 0; w < 4; ++w) {
    off += std::snprintf(
        json + off, sizeof(json) - static_cast<std::size_t>(off),
        "  {\"workers\": %zu, \"seconds\": %.6f, \"tasks_per_second\": %.1f,"
        " \"speedup_vs_workers_1\": %.2f}%s\n",
        worker_counts[w], seconds_by_workers[w],
        n_tasks / seconds_by_workers[w],
        seconds_by_workers[0] / seconds_by_workers[w], w + 1 < 4 ? "," : "");
  }
  std::snprintf(
      json + off, sizeof(json) - static_cast<std::size_t>(off),
      " ],\n"
      " \"recovery\": {\"workers\": 4, \"clean_seconds\": %.6f,\n"
      "  \"killed_seconds\": %.6f, \"overhead_pct\": %.2f,\n"
      "  \"worker_deaths\": %zu, \"redispatches\": %zu},\n"
      " \"transport\": {\"workers\": 4, \"socketpair_seconds\": %.6f,\n"
      "  \"tcp_loopback_seconds\": %.6f, \"tcp_overhead_pct\": %.2f},\n"
      " \"obs\": {\"off_seconds\": %.6f, \"on_seconds\": %.6f,\n"
      "  \"overhead_pct\": %.2f}}\n",
      clean4_s, killed_s, recovery_pct, killed_stats.worker_deaths,
      killed_stats.redispatches, clean4_s, tcp_s, tcp_pct, obs_off_s,
      obs_on_s, obs_pct);
  std::FILE* out = std::fopen("BENCH_shard.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_shard.json\n");
    return 1;
  }
  std::fputs(json, out);
  std::fclose(out);
  std::printf("\nwrote BENCH_shard.json\n");
  return 0;
}
