// Pipeline throughput bench: runs a cheap-method grid through the
// BenchmarkRunner and reports tasks/sec plus p50/p95 per-task latency, read
// from the tfb/obs metrics registry (the `tfb_task_seconds` histogram the
// runner feeds on every task). Also measures the observability overhead —
// the same grid with collection off versus on — to keep the ≤2% budget of
// DESIGN.md "Observability" honest.
//
// Emits BENCH_pipeline.json to the working directory:
//   {"tasks": N, "threads": T,
//    "disabled": {"seconds": ..., "tasks_per_second": ...},
//    "enabled":  {"seconds": ..., "tasks_per_second": ...,
//                 "p50_task_ms": ..., "p95_task_ms": ...},
//    "overhead_pct": ...,
//    "dl_heavy": {"tasks": ..., "seconds": ..., "tasks_per_second": ...}}
//
// The dl_heavy leg runs a deep-learning grid whose fit time is dominated
// by the tfb/linalg compute kernels, so it tracks kernel-layer regressions
// the cheap-method grid cannot see.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "tfb/stats/rng.h"

namespace {

using namespace tfb;
using Clock = std::chrono::steady_clock;

ts::TimeSeries SmallSeasonal(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = 3.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 12.0) +
           rng.Gaussian(0.0, 0.3);
  }
  ts::TimeSeries s = ts::TimeSeries::Univariate(std::move(x));
  s.set_seasonal_period(12);
  s.set_name("bench");
  return s;
}

std::vector<pipeline::BenchmarkTask> BuildGrid() {
  // Realistically-weighted tasks (methods that actually fit something):
  // per-task work must dominate runner machinery, as it does on a real
  // grid, for the overhead measurement to be representative.
  std::vector<pipeline::BenchmarkTask> tasks;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (const char* method :
         {"Theta", "ETS", "LinearRegression", "SeasonalNaive"}) {
      for (const std::size_t horizon : {std::size_t{6}, std::size_t{12}}) {
        pipeline::BenchmarkTask task;
        task.dataset = "bench" + std::to_string(seed);
        task.series = SmallSeasonal(800, seed);
        task.method = method;
        task.horizon = horizon;
        tasks.push_back(std::move(task));
      }
    }
  }
  return tasks;
}

std::vector<pipeline::BenchmarkTask> BuildDlGrid() {
  // GEMM-bound leg: deep-learning forecasters whose fit time is dominated
  // by the tfb/linalg kernels. Tracks the compute-kernel layer's effect on
  // end-to-end pipeline throughput (the cheap-method grid above is runner-
  // machinery-bound and barely touches the kernels).
  std::vector<pipeline::BenchmarkTask> tasks;
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    for (const char* method : {"DLinear", "NLinear", "MLP", "N-BEATS"}) {
      pipeline::BenchmarkTask task;
      task.dataset = "bench" + std::to_string(seed);
      task.series = SmallSeasonal(800, seed);
      task.method = method;
      task.horizon = 12;
      tasks.push_back(std::move(task));
    }
  }
  return tasks;
}

double RunGridSeconds(const std::vector<pipeline::BenchmarkTask>& tasks,
                      std::size_t threads) {
  pipeline::RunnerOptions options;
  options.num_threads = threads;
  const auto start = Clock::now();
  const auto rows = pipeline::BenchmarkRunner(options).Run(tasks);
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (const auto& row : rows) {
    TFB_CHECK_MSG(row.ok, "bench task failed");
  }
  return seconds;
}

/// Interleaved measurement: every cycle runs all four modes — disabled /
/// metrics-only / metrics+tracing / metrics+HTTP-scrape — back to back, so
/// thermal and scheduler drift hit every mode of a cycle about equally.
/// Per-mode seconds and overheads are then medians: the overhead of a mode
/// is the median over cycles of its *within-cycle* ratio to the disabled
/// leg, which cancels the slow load drift of a shared machine far better
/// than comparing two independent minima.
struct ModeTimes {
  std::vector<double> disabled_seconds;
  std::vector<double> metrics_seconds;
  std::vector<double> full_seconds;
  std::vector<double> serve_seconds;
};

double Median(std::vector<double> v) {
  TFB_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

/// Median over cycles of the paired overhead ratio mode[i]/base[i] - 1.
double PairedOverheadPct(const std::vector<double>& mode,
                         const std::vector<double>& base) {
  std::vector<double> ratios(mode.size());
  for (std::size_t i = 0; i < mode.size(); ++i) {
    ratios[i] = mode[i] / base[i] - 1.0;
  }
  return Median(std::move(ratios)) * 100.0;
}

ModeTimes MeasureInterleaved(std::size_t repeats,
                             const std::vector<pipeline::BenchmarkTask>& tasks,
                             std::size_t threads) {
  ModeTimes times;
  for (std::size_t i = 0; i < repeats; ++i) {
    obs::SetEnabled(false);
    obs::DefaultTracer().Disable();
    times.disabled_seconds.push_back(RunGridSeconds(tasks, threads));
    obs::SetEnabled(true);  // Metrics on, tracer still off.
    times.metrics_seconds.push_back(RunGridSeconds(tasks, threads));
    obs::DefaultTracer().Enable();
    times.full_seconds.push_back(RunGridSeconds(tasks, threads));
    // Scrape-under-load: metrics on (tracer off, to isolate the scrape
    // cost on top of the metrics baseline), the embedded HTTP endpoint
    // serving, and a client polling /metrics + /status every 25ms — two
    // orders of magnitude harsher than a real Prometheus poll every few
    // seconds, while leaving the CPU to the workers it is measuring (on a
    // single-core host a busy-polling client would bill its own
    // timeshare to the runner).
    obs::DefaultTracer().Disable();
    {
      obs::HttpExporter exporter({.run_id = "bench"});
      TFB_CHECK_MSG(exporter.Start().ok(), "bench exporter failed to start");
      std::atomic<bool> stop{false};
      std::thread scraper([&exporter, &stop] {
        std::string body;
        while (!stop.load(std::memory_order_relaxed)) {
          obs::HttpGet(exporter.port(), "/metrics", &body);
          obs::HttpGet(exporter.port(), "/status", &body);
          std::this_thread::sleep_for(std::chrono::milliseconds(25));
        }
      });
      times.serve_seconds.push_back(RunGridSeconds(tasks, threads));
      stop.store(true, std::memory_order_relaxed);
      scraper.join();
      exporter.Stop();
    }
  }
  obs::SetEnabled(false);
  obs::DefaultTracer().Disable();
  return times;
}

}  // namespace

int main() {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRepeats = 20;
  const std::vector<pipeline::BenchmarkTask> tasks = BuildGrid();

  std::printf("=== Pipeline throughput (tfb/obs instrumentation) ===\n");
  std::printf(
      "grid: %zu tasks, %zu threads, median of %zu interleaved cycles\n"
      "(overheads are medians of within-cycle ratios to the disabled leg)\n"
      "\n",
      tasks.size(), kThreads, kRepeats);

  // Warm-up: touch every code path (and the method registry) once.
  RunGridSeconds(tasks, kThreads);

  obs::DefaultRegistry().Reset();
  const ModeTimes times = MeasureInterleaved(kRepeats, tasks, kThreads);

  const auto& latency = obs::DefaultRegistry().GetHistogram(
      "tfb_task_seconds", obs::ExponentialBounds());
  const double p50_ms = latency.Quantile(0.5) * 1e3;
  const double p95_ms = latency.Quantile(0.95) * 1e3;
  const double n_tasks = static_cast<double>(tasks.size());
  const double disabled_s = Median(times.disabled_seconds);
  const double metrics_s = Median(times.metrics_seconds);
  const double full_s = Median(times.full_seconds);
  const double serve_s = Median(times.serve_seconds);
  const double disabled_tps = n_tasks / disabled_s;
  const double metrics_tps = n_tasks / metrics_s;
  const double full_tps = n_tasks / full_s;
  const double serve_tps = n_tasks / serve_s;
  const double metrics_overhead_pct =
      PairedOverheadPct(times.metrics_seconds, times.disabled_seconds);
  const double full_overhead_pct =
      PairedOverheadPct(times.full_seconds, times.disabled_seconds);
  const double serve_overhead_pct =
      PairedOverheadPct(times.serve_seconds, times.disabled_seconds);

  std::printf("%-22s %10s %14s %10s\n", "mode", "seconds", "tasks/sec",
              "overhead");
  std::printf("%-22s %10.4f %14.1f %10s\n", "obs disabled", disabled_s,
              disabled_tps, "-");
  std::printf("%-22s %10.4f %14.1f %+9.2f%%\n", "metrics only", metrics_s,
              metrics_tps, metrics_overhead_pct);
  std::printf("%-22s %10.4f %14.1f %+9.2f%%\n", "metrics + tracing", full_s,
              full_tps, full_overhead_pct);
  std::printf("%-22s %10.4f %14.1f %+9.2f%%\n", "metrics + http scrape",
              serve_s, serve_tps, serve_overhead_pct);
  std::printf("\nper-task latency (instrumented runs, %llu samples): "
              "p50=%.3fms p95=%.3fms mean=%.3fms\n",
              static_cast<unsigned long long>(latency.Count()), p50_ms,
              p95_ms, latency.Mean() * 1e3);
  std::printf("observability overhead budget: <=2%% (DESIGN.md)\n");

  // DL-heavy leg: kernel-bound throughput (obs off so the number tracks
  // pure compute, median of 3 runs).
  const std::vector<pipeline::BenchmarkTask> dl_tasks = BuildDlGrid();
  RunGridSeconds(dl_tasks, kThreads);  // Warm-up.
  std::vector<double> dl_seconds;
  for (int i = 0; i < 3; ++i) {
    dl_seconds.push_back(RunGridSeconds(dl_tasks, kThreads));
  }
  const double dl_s = Median(dl_seconds);
  const double dl_tps = static_cast<double>(dl_tasks.size()) / dl_s;
  std::printf("\n=== DL-heavy leg (kernel-bound: DLinear/NLinear/MLP/"
              "N-BEATS) ===\n");
  std::printf("%zu tasks in %.4fs -> %.2f tasks/sec\n", dl_tasks.size(),
              dl_s, dl_tps);

  char json[1536];
  std::snprintf(
      json, sizeof(json),
      "{\"tasks\": %zu, \"threads\": %zu,\n"
      " \"disabled\": {\"seconds\": %.6f, \"tasks_per_second\": %.1f},\n"
      " \"metrics_only\": {\"seconds\": %.6f, \"tasks_per_second\": %.1f,\n"
      "  \"overhead_pct\": %.2f},\n"
      " \"enabled\": {\"seconds\": %.6f, \"tasks_per_second\": %.1f,\n"
      "  \"p50_task_ms\": %.3f, \"p95_task_ms\": %.3f,\n"
      "  \"overhead_pct\": %.2f},\n"
      " \"serve_scrape\": {\"seconds\": %.6f, \"tasks_per_second\": %.1f,\n"
      "  \"overhead_pct\": %.2f},\n"
      " \"dl_heavy\": {\"tasks\": %zu, \"seconds\": %.6f,\n"
      "  \"tasks_per_second\": %.2f}}\n",
      tasks.size(), kThreads, disabled_s, disabled_tps, metrics_s,
      metrics_tps, metrics_overhead_pct, full_s, full_tps, p50_ms, p95_ms,
      full_overhead_pct, serve_s, serve_tps, serve_overhead_pct,
      dl_tasks.size(), dl_s, dl_tps);
  std::FILE* out = std::fopen("BENCH_pipeline.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_pipeline.json\n");
    return 1;
  }
  std::fputs(json, out);
  std::fclose(out);
  std::printf("\nwrote BENCH_pipeline.json\n");
  return 0;
}
