// Pipeline throughput bench: runs a cheap-method grid through the
// BenchmarkRunner and reports tasks/sec plus p50/p95 per-task latency, read
// from the tfb/obs metrics registry (the `tfb_task_seconds` histogram the
// runner feeds on every task). Also measures the observability overhead —
// the same grid with collection off versus on — to keep the ≤2% budget of
// DESIGN.md "Observability" honest.
//
// Emits BENCH_pipeline.json to the working directory:
//   {"tasks": N, "threads": T,
//    "disabled": {"seconds": ..., "tasks_per_second": ...},
//    "enabled":  {"seconds": ..., "tasks_per_second": ...,
//                 "p50_task_ms": ..., "p95_task_ms": ...},
//    "overhead_pct": ...}

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "tfb/stats/rng.h"

namespace {

using namespace tfb;
using Clock = std::chrono::steady_clock;

ts::TimeSeries SmallSeasonal(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = 3.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 12.0) +
           rng.Gaussian(0.0, 0.3);
  }
  ts::TimeSeries s = ts::TimeSeries::Univariate(std::move(x));
  s.set_seasonal_period(12);
  s.set_name("bench");
  return s;
}

std::vector<pipeline::BenchmarkTask> BuildGrid() {
  // Realistically-weighted tasks (methods that actually fit something):
  // per-task work must dominate runner machinery, as it does on a real
  // grid, for the overhead measurement to be representative.
  std::vector<pipeline::BenchmarkTask> tasks;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (const char* method :
         {"Theta", "ETS", "LinearRegression", "SeasonalNaive"}) {
      for (const std::size_t horizon : {std::size_t{6}, std::size_t{12}}) {
        pipeline::BenchmarkTask task;
        task.dataset = "bench" + std::to_string(seed);
        task.series = SmallSeasonal(800, seed);
        task.method = method;
        task.horizon = horizon;
        tasks.push_back(std::move(task));
      }
    }
  }
  return tasks;
}

double RunGridSeconds(const std::vector<pipeline::BenchmarkTask>& tasks,
                      std::size_t threads) {
  pipeline::RunnerOptions options;
  options.num_threads = threads;
  const auto start = Clock::now();
  const auto rows = pipeline::BenchmarkRunner(options).Run(tasks);
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (const auto& row : rows) {
    TFB_CHECK_MSG(row.ok, "bench task failed");
  }
  return seconds;
}

/// Interleaved A/B/C measurement: alternating disabled / metrics-only /
/// metrics+tracing grid runs so thermal and scheduler drift hit every mode
/// equally, taking the best-of-N per mode (the minimum is the least noisy
/// estimator on a shared machine).
struct ModeTimes {
  double disabled_seconds = std::numeric_limits<double>::infinity();
  double metrics_seconds = std::numeric_limits<double>::infinity();
  double full_seconds = std::numeric_limits<double>::infinity();
};

ModeTimes MeasureInterleaved(std::size_t repeats,
                             const std::vector<pipeline::BenchmarkTask>& tasks,
                             std::size_t threads) {
  ModeTimes best;
  for (std::size_t i = 0; i < repeats; ++i) {
    obs::SetEnabled(false);
    obs::DefaultTracer().Disable();
    best.disabled_seconds =
        std::min(best.disabled_seconds, RunGridSeconds(tasks, threads));
    obs::SetEnabled(true);  // Metrics on, tracer still off.
    best.metrics_seconds =
        std::min(best.metrics_seconds, RunGridSeconds(tasks, threads));
    obs::DefaultTracer().Enable();
    best.full_seconds =
        std::min(best.full_seconds, RunGridSeconds(tasks, threads));
  }
  obs::SetEnabled(false);
  obs::DefaultTracer().Disable();
  return best;
}

}  // namespace

int main() {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRepeats = 10;
  const std::vector<pipeline::BenchmarkTask> tasks = BuildGrid();

  std::printf("=== Pipeline throughput (tfb/obs instrumentation) ===\n");
  std::printf(
      "grid: %zu tasks, %zu threads, best of %zu interleaved runs per mode\n"
      "\n",
      tasks.size(), kThreads, kRepeats);

  // Warm-up: touch every code path (and the method registry) once.
  RunGridSeconds(tasks, kThreads);

  obs::DefaultRegistry().Reset();
  const ModeTimes best = MeasureInterleaved(kRepeats, tasks, kThreads);

  const auto& latency = obs::DefaultRegistry().GetHistogram(
      "tfb_task_seconds", obs::ExponentialBounds());
  const double p50_ms = latency.Quantile(0.5) * 1e3;
  const double p95_ms = latency.Quantile(0.95) * 1e3;
  const double n_tasks = static_cast<double>(tasks.size());
  const double disabled_tps = n_tasks / best.disabled_seconds;
  const double metrics_tps = n_tasks / best.metrics_seconds;
  const double full_tps = n_tasks / best.full_seconds;
  const double metrics_overhead_pct =
      (best.metrics_seconds / best.disabled_seconds - 1.0) * 100.0;
  const double full_overhead_pct =
      (best.full_seconds / best.disabled_seconds - 1.0) * 100.0;

  std::printf("%-22s %10s %14s %10s\n", "mode", "seconds", "tasks/sec",
              "overhead");
  std::printf("%-22s %10.4f %14.1f %10s\n", "obs disabled",
              best.disabled_seconds, disabled_tps, "-");
  std::printf("%-22s %10.4f %14.1f %+9.2f%%\n", "metrics only",
              best.metrics_seconds, metrics_tps, metrics_overhead_pct);
  std::printf("%-22s %10.4f %14.1f %+9.2f%%\n", "metrics + tracing",
              best.full_seconds, full_tps, full_overhead_pct);
  std::printf("\nper-task latency (instrumented runs, %llu samples): "
              "p50=%.3fms p95=%.3fms mean=%.3fms\n",
              static_cast<unsigned long long>(latency.Count()), p50_ms,
              p95_ms, latency.Mean() * 1e3);
  std::printf("observability overhead budget: <=2%% (DESIGN.md)\n");

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\"tasks\": %zu, \"threads\": %zu,\n"
      " \"disabled\": {\"seconds\": %.6f, \"tasks_per_second\": %.1f},\n"
      " \"metrics_only\": {\"seconds\": %.6f, \"tasks_per_second\": %.1f,\n"
      "  \"overhead_pct\": %.2f},\n"
      " \"enabled\": {\"seconds\": %.6f, \"tasks_per_second\": %.1f,\n"
      "  \"p50_task_ms\": %.3f, \"p95_task_ms\": %.3f,\n"
      "  \"overhead_pct\": %.2f}}\n",
      tasks.size(), kThreads, best.disabled_seconds, disabled_tps,
      best.metrics_seconds, metrics_tps, metrics_overhead_pct,
      best.full_seconds, full_tps, p50_ms, p95_ms, full_overhead_pct);
  std::FILE* out = std::fopen("BENCH_pipeline.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_pipeline.json\n");
    return 1;
  }
  std::fputs(json, out);
  std::fclose(out);
  std::printf("\nwrote BENCH_pipeline.json\n");
  return 0;
}
