// Serving-plane load bench: drives POST /forecast over real loopback HTTP
// against a warm ForecastService and reports latency percentiles and
// throughput. Three legs:
//
//  - closed loop: N clients issue requests back-to-back (each waits for
//    its response before sending the next) across a concurrency sweep;
//    QPS at saturation is the sweep's peak.
//  - open loop: requests arrive on a fixed schedule regardless of
//    completions (the "users do not wait for each other" regime), at
//    fractions of the closed-loop saturation rate; shed (429) responses
//    are counted, not retried.
//  - obs overhead: closed loop at fixed concurrency with metrics off vs
//    on, against the ≤2% budget of DESIGN.md "Observability".
//
// Emits BENCH_serving.json to the working directory:
//   {"hardware_threads": H, "model": "...", "history_points": P,
//    "horizon": h,
//    "closed_loop": [{"clients": C, "requests": N, "qps": ...,
//                     "p50_ms": ..., "p95_ms": ...}, ...],
//    "saturation": {"clients": C, "qps": ...},
//    "open_loop": [{"offered_qps": ..., "achieved_qps": ...,
//                   "completed": N, "shed": S,
//                   "p50_ms": ..., "p95_ms": ...}, ...],
//    "obs": {"off_qps": ..., "on_qps": ..., "overhead_pct": ...}}
//
// Honesty note: clients, the epoll loop, and the dispatcher crew all
// time-share the host's cores (one, in the CI container), so percentiles
// include client-side scheduling noise and QPS undercounts what a
// dedicated server box would serve. The shape — saturation behaviour,
// open-loop queueing tail, shed kicking in past saturation — is the
// reproduction target; hardware_threads is carried in the JSON so readers
// can tell which regime produced the numbers.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "tfb/obs/http_exporter.h"
#include "tfb/obs/metrics.h"
#include "tfb/pipeline/method_registry.h"
#include "tfb/serve/json.h"
#include "tfb/serve/registry.h"
#include "tfb/serve/service.h"
#include "tfb/stats/rng.h"

namespace {

using namespace tfb;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kHistoryPoints = 168;  // One weekly cycle, hourly.
constexpr std::size_t kHorizon = 24;
constexpr const char* kMethod = "Theta";

ts::TimeSeries BenchSeries(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = 10.0 + 4.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           rng.Gaussian(0.0, 0.4);
  }
  ts::TimeSeries s = ts::TimeSeries::Univariate(std::move(x));
  s.set_seasonal_period(24);
  return s;
}

std::string RequestBody() {
  const ts::TimeSeries history = BenchSeries(kHistoryPoints, 99);
  std::string body = "{\"model\":\"bench\",\"horizon\":" +
                     std::to_string(kHorizon) + ",\"history\":[";
  for (std::size_t t = 0; t < history.length(); ++t) {
    if (t != 0) body += ',';
    serve::AppendJsonDouble(&body, history.at(t, 0));
  }
  body += "]}";
  return body;
}

double PercentileMs(std::vector<double>* latencies_ms, double q) {
  if (latencies_ms->empty()) return 0.0;
  std::sort(latencies_ms->begin(), latencies_ms->end());
  const double rank = q * static_cast<double>(latencies_ms->size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, latencies_ms->size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return (*latencies_ms)[lo] * (1.0 - frac) + (*latencies_ms)[hi] * frac;
}

struct LegResult {
  std::size_t completed = 0;
  std::size_t shed = 0;
  std::size_t errors = 0;
  double seconds = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double qps() const {
    return seconds > 0.0 ? static_cast<double>(completed) / seconds : 0.0;
  }
};

/// Closed loop: `clients` threads, each firing back-to-back requests until
/// the deadline. Every request opens a fresh connection (the exporter is
/// HTTP/1.0 close-per-request), so connection setup is part of the cost.
LegResult RunClosedLoop(std::uint16_t port, const std::string& body,
                        std::size_t clients, double seconds) {
  std::vector<std::thread> threads;
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> shed{0};
  std::atomic<std::size_t> errors{0};
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(seconds));
  const Clock::time_point start = Clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      while (Clock::now() < deadline) {
        int code = 0;
        std::string response;
        const Clock::time_point sent = Clock::now();
        const bool ok =
            obs::HttpPost(port, "/forecast", body, &code, &response);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - sent)
                .count();
        if (ok && code == 200) {
          latencies[c].push_back(ms);
          completed.fetch_add(1, std::memory_order_relaxed);
        } else if (ok && code == 429) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  LegResult result;
  result.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.completed = completed.load();
  result.shed = shed.load();
  result.errors = errors.load();
  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  result.p50_ms = PercentileMs(&all, 0.50);
  result.p95_ms = PercentileMs(&all, 0.95);
  return result;
}

/// Open loop: arrivals on a fixed schedule, issued by a sender pool large
/// enough that a slow response does not delay the next arrival.
LegResult RunOpenLoop(std::uint16_t port, const std::string& body,
                      double offered_qps, double seconds) {
  const std::size_t total =
      static_cast<std::size_t>(offered_qps * seconds);
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / offered_qps));
  constexpr std::size_t kSenders = 16;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> shed{0};
  std::atomic<std::size_t> errors{0};
  std::vector<std::vector<double>> latencies(kSenders);
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> senders;
  for (std::size_t s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) return;
        std::this_thread::sleep_until(start + interval * (i + 1));
        int code = 0;
        std::string response;
        // Latency is measured from the *scheduled* arrival, so queueing
        // delay inside the server shows up in the tail (the open-loop
        // point of view).
        const Clock::time_point scheduled = start + interval * (i + 1);
        const bool ok =
            obs::HttpPost(port, "/forecast", body, &code, &response);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      scheduled)
                .count();
        if (ok && code == 200) {
          latencies[s].push_back(ms);
          completed.fetch_add(1, std::memory_order_relaxed);
        } else if (ok && code == 429) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : senders) t.join();
  LegResult result;
  result.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.completed = completed.load();
  result.shed = shed.load();
  result.errors = errors.load();
  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  result.p50_ms = PercentileMs(&all, 0.50);
  result.p95_ms = PercentileMs(&all, 0.95);
  return result;
}

}  // namespace

int main() {
  const unsigned hardware = std::thread::hardware_concurrency();

  // One warm model; a batch groups every request onto one lease, so this
  // measures the dispatch/batching machinery plus real forecast compute.
  serve::ModelRegistry registry(4);
  {
    pipeline::MethodParams params;
    params.horizon = kHorizon;
    auto config = pipeline::MakeMethod(kMethod, params);
    TFB_CHECK(config.has_value());
    serve::ModelArtifact artifact;
    artifact.method = kMethod;
    artifact.params = params;
    artifact.forecaster = config->factory();
    artifact.forecaster->Fit(BenchSeries(720, 7));
    TFB_CHECK(registry.AddModel("bench", std::move(artifact)).ok());
  }

  serve::ForecastServiceOptions options;
  options.max_queue = 512;
  options.max_batch = 16;
  options.batch_linger_ms = 1;
  options.dispatch_threads = 2;
  serve::ForecastService service(&registry, options);
  service.Start();
  obs::HttpExporter exporter({.run_id = "bench_serving"});
  service.InstallRoutes(&exporter);
  TFB_CHECK(exporter.Start().ok());
  const std::uint16_t port = exporter.port();
  const std::string body = RequestBody();

  obs::SetEnabled(true);
  std::printf("bench_serving: %s model, %zu-point history, horizon %zu, "
              "port %u, hardware_threads=%u\n\n",
              kMethod, kHistoryPoints, kHorizon, port, hardware);

  // Warm-up: populate caches, fault in code paths.
  (void)RunClosedLoop(port, body, 2, 0.5);

  // --- Closed loop: concurrency sweep. ---
  const std::size_t client_counts[] = {1, 2, 4, 8, 16, 32};
  constexpr double kClosedSeconds = 2.0;
  std::vector<LegResult> closed;
  double saturation_qps = 0.0;
  std::size_t saturation_clients = 0;
  for (const std::size_t clients : client_counts) {
    const LegResult leg = RunClosedLoop(port, body, clients, kClosedSeconds);
    closed.push_back(leg);
    std::printf("closed loop  clients=%-3zu qps=%-8.1f p50=%6.2fms "
                "p95=%7.2fms  (%zu ok, %zu shed, %zu err)\n",
                clients, leg.qps(), leg.p50_ms, leg.p95_ms, leg.completed,
                leg.shed, leg.errors);
    if (leg.qps() > saturation_qps) {
      saturation_qps = leg.qps();
      saturation_clients = clients;
    }
  }
  std::printf("saturation: %.1f qps at %zu clients\n\n", saturation_qps,
              saturation_clients);

  // --- Open loop: offered rates bracketing saturation. ---
  const double fractions[] = {0.5, 0.8, 1.1};
  constexpr double kOpenSeconds = 2.0;
  std::vector<std::pair<double, LegResult>> open;
  for (const double fraction : fractions) {
    const double offered = std::max(1.0, saturation_qps * fraction);
    const LegResult leg = RunOpenLoop(port, body, offered, kOpenSeconds);
    open.emplace_back(offered, leg);
    std::printf("open loop    offered=%-7.1f achieved=%-7.1f p50=%6.2fms "
                "p95=%7.2fms  (%zu ok, %zu shed, %zu err)\n",
                offered, leg.qps(), leg.p50_ms, leg.p95_ms, leg.completed,
                leg.shed, leg.errors);
  }
  std::printf("\n");

  // --- Observability overhead: metrics off vs on, fixed concurrency. ---
  obs::SetEnabled(false);
  const LegResult obs_off = RunClosedLoop(port, body, 4, kClosedSeconds);
  obs::SetEnabled(true);
  const LegResult obs_on = RunClosedLoop(port, body, 4, kClosedSeconds);
  const double obs_pct = obs_off.qps() > 0.0
                             ? (obs_off.qps() / obs_on.qps() - 1.0) * 100.0
                             : 0.0;
  std::printf("obs overhead (clients=4)     off=%.1f qps on=%.1f qps "
              "(%+.2f%%, budget <=2%%)\n",
              obs_off.qps(), obs_on.qps(), obs_pct);

  service.Stop();
  exporter.Stop();

  // --- JSON. ---
  std::string json = "{\"hardware_threads\": " + std::to_string(hardware) +
                     ", \"model\": \"" + kMethod + "\", \"history_points\": " +
                     std::to_string(kHistoryPoints) +
                     ", \"horizon\": " + std::to_string(kHorizon) + ",\n" +
                     " \"closed_loop\": [\n";
  char line[256];
  for (std::size_t i = 0; i < closed.size(); ++i) {
    std::snprintf(line, sizeof line,
                  "  {\"clients\": %zu, \"requests\": %zu, \"qps\": %.1f, "
                  "\"p50_ms\": %.2f, \"p95_ms\": %.2f}%s\n",
                  client_counts[i], closed[i].completed, closed[i].qps(),
                  closed[i].p50_ms, closed[i].p95_ms,
                  i + 1 < closed.size() ? "," : "");
    json += line;
  }
  std::snprintf(line, sizeof line,
                " ],\n \"saturation\": {\"clients\": %zu, \"qps\": %.1f},\n"
                " \"open_loop\": [\n",
                saturation_clients, saturation_qps);
  json += line;
  for (std::size_t i = 0; i < open.size(); ++i) {
    std::snprintf(line, sizeof line,
                  "  {\"offered_qps\": %.1f, \"achieved_qps\": %.1f, "
                  "\"completed\": %zu, \"shed\": %zu, \"p50_ms\": %.2f, "
                  "\"p95_ms\": %.2f}%s\n",
                  open[i].first, open[i].second.qps(),
                  open[i].second.completed, open[i].second.shed,
                  open[i].second.p50_ms, open[i].second.p95_ms,
                  i + 1 < open.size() ? "," : "");
    json += line;
  }
  std::snprintf(line, sizeof line,
                " ],\n \"obs\": {\"off_qps\": %.1f, \"on_qps\": %.1f, "
                "\"overhead_pct\": %.2f}}\n",
                obs_off.qps(), obs_on.qps(), obs_pct);
  json += line;

  std::FILE* out = std::fopen("BENCH_serving.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serving.json\n");
    return 1;
  }
  std::fputs(json.c_str(), out);
  std::fclose(out);
  std::printf("\nwrote BENCH_serving.json\n");
  return 0;
}
