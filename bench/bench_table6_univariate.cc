// Reproduces Table 6: the univariate study — fixed-strategy evaluation of
// statistical, ML, and DL methods on the univariate collection, reported as
// average MASE / MSMAPE and "Ranks" (count of best-MSMAPE wins), split by
// the presence/absence of each characteristic.
//
// Paper shape to reproduce: deep miniatures (TimesNet/PatchTST class) lead
// the MASE/MSMAPE averages, while the ML methods LinearRegression and
// RandomForest collect the most Ranks (per-series wins), because each
// series trains its own model and deep methods are data-hungry.

#include <cmath>
#include <map>

#include "bench_common.h"

namespace {

struct SeriesScores {
  bool seasonal = false;
  bool trending = false;
  bool shifting = false;
  bool transition = false;
  bool stationary = false;
  std::map<std::string, double> mase;
  std::map<std::string, double> msmape;
};

}  // namespace

int main() {
  using namespace tfb;
  std::printf("=== Table 6: univariate forecasting results ===\n");
  std::printf(
      "SCALING: 0.8%% scale collection (~64 series vs 8,068), 12 methods\n"
      "(one per paper family), DL miniatures with 8 epochs.\n\n");

  datagen::UnivariateCollectionOptions options;
  options.scale = 0.008;
  const auto entries = datagen::GenerateUnivariateCollection(options);

  const std::vector<std::string> methods = {
      "Theta",   "ETS",    "ARIMA",  "KalmanFilter",
      "LinearRegression", "RandomForest", "XGB",
      "NLinear", "DLinear", "MLP",   "PatchAttention", "FrequencyLinear"};

  std::vector<SeriesScores> all_scores;
  for (const auto& entry : entries) {
    const std::size_t f = entry.horizon;
    // Paper protocol: look-back = 1.25 * F; skip series too short to hold
    // a training region plus the horizon.
    if (entry.series.length() < 3 * f + 16) continue;
    SeriesScores scores;
    const std::vector<double> x = entry.series.Column(0);
    const std::size_t period = entry.series.seasonal_period();
    const auto strengths =
        characterization::ComputeStlStrengths(x, period > 1 ? period : 0);
    scores.seasonal = strengths.seasonality > 0.5;
    scores.trending = strengths.trend > 0.6;
    scores.shifting =
        std::fabs(characterization::ShiftingValue(x) - 0.5) > 0.08;
    scores.transition = characterization::TransitionValue(x) > 0.01;
    scores.stationary = characterization::IsStationary(x);

    for (const auto& method : methods) {
      pipeline::MethodParams params = bench::FastParams(f);
      params.train_epochs = 8;
      params.lookback = std::max<std::size_t>(
          4, static_cast<std::size_t>(1.25 * static_cast<double>(f)));
      const auto config = pipeline::MakeMethod(method, params);
      auto forecaster = config->factory();
      eval::FixedOptions fixed;
      fixed.metrics = {eval::Metric::kMase, eval::Metric::kMsmape};
      const eval::EvalResult r =
          eval::FixedForecastEvaluate(*forecaster, entry.series, f, fixed);
      scores.mase[method] = r.metrics.at(eval::Metric::kMase);
      scores.msmape[method] = r.metrics.at(eval::Metric::kMsmape);
    }
    all_scores.push_back(std::move(scores));
  }

  // Report per characteristic split, like the paper's row blocks.
  struct Block {
    const char* label;
    bool SeriesScores::* member;
  };
  const Block blocks[] = {
      {"Seasonality", &SeriesScores::seasonal},
      {"Trend", &SeriesScores::trending},
      {"Stationarity", &SeriesScores::stationary},
      {"Transition", &SeriesScores::transition},
      {"Shifting", &SeriesScores::shifting},
  };

  auto report = [&](const char* label, bool present,
                    bool SeriesScores::* member) {
    std::map<std::string, double> mase_sum;
    std::map<std::string, double> msmape_sum;
    std::map<std::string, std::size_t> ranks;
    std::size_t count = 0;
    for (const auto& s : all_scores) {
      if (s.*member != present) continue;
      ++count;
      std::string best;
      double best_value = 1e300;
      for (const auto& m : methods) {
        const double mase = s.mase.at(m);
        const double msmape = s.msmape.at(m);
        if (std::isfinite(mase)) mase_sum[m] += mase;
        if (std::isfinite(msmape)) msmape_sum[m] += msmape;
        if (msmape < best_value) {
          best_value = msmape;
          best = m;
        }
      }
      if (!best.empty()) ++ranks[best];
    }
    if (count == 0) return;
    std::printf("\n%s = %s  (%zu series)\n", label, present ? "yes" : "no",
                count);
    std::printf("  %-18s %-10s %-10s %s\n", "method", "mase", "msmape",
                "ranks");
    for (const auto& m : methods) {
      std::printf("  %-18s %-10.3f %-10.3f %zu\n", m.c_str(),
                  mase_sum[m] / count, msmape_sum[m] / count, ranks[m]);
    }
  };

  for (const Block& block : blocks) {
    report(block.label, true, block.member);
    report(block.label, false, block.member);
  }

  // Overall Ranks tally (the paper's headline: LR/RF collect the most).
  std::map<std::string, std::size_t> total_ranks;
  for (const auto& s : all_scores) {
    std::string best;
    double best_value = 1e300;
    for (const auto& m : methods) {
      if (s.msmape.at(m) < best_value) {
        best_value = s.msmape.at(m);
        best = m;
      }
    }
    ++total_ranks[best];
  }
  std::printf("\nOverall Ranks (best msmape per series):\n");
  for (const auto& [method, wins] : total_ranks) {
    std::printf("  %-18s %zu\n", method.c_str(), wins);
  }
  std::printf("\nTotal series evaluated: %zu\n", all_scores.size());
  return 0;
}
