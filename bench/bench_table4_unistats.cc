// Reproduces Table 4: statistics of the univariate collection by frequency
// and characteristic (counts of seasonal / trending / shifting /
// transition-heavy / stationary series, plus short-series counts and the
// per-frequency forecasting horizon F).

#include <cmath>
#include <map>

#include "bench_common.h"

int main() {
  using namespace tfb;
  std::printf("=== Table 4: univariate collection statistics ===\n");
  std::printf(
      "SCALING: 10%% scale model of the paper's 8,068 series (the paper\n"
      "counts are printed alongside for reference).\n\n");

  datagen::UnivariateCollectionOptions options;
  options.scale = 0.10;
  const auto entries = datagen::GenerateUnivariateCollection(options);

  struct Row {
    std::size_t count = 0;
    std::size_t seasonal = 0;
    std::size_t trending = 0;
    std::size_t shifting = 0;
    std::size_t transition = 0;
    std::size_t stationary = 0;
    std::size_t short_series = 0;
    std::size_t horizon = 0;
  };
  std::map<ts::Frequency, Row> rows;
  for (const auto& entry : entries) {
    Row& row = rows[entry.series.frequency()];
    ++row.count;
    row.horizon = entry.horizon;
    const std::vector<double> x = entry.series.Column(0);
    const std::size_t period = entry.series.seasonal_period();
    const auto strengths =
        characterization::ComputeStlStrengths(x, period > 1 ? period : 0);
    if (strengths.seasonality > 0.5) ++row.seasonal;
    if (strengths.trend > 0.6) ++row.trending;
    if (std::fabs(characterization::ShiftingValue(x) - 0.5) > 0.08) {
      ++row.shifting;
    }
    if (characterization::TransitionValue(x) > 0.01) ++row.transition;
    if (characterization::IsStationary(x)) ++row.stationary;
    if (entry.series.length() < 300) ++row.short_series;
  }

  std::printf("%-11s %-8s %-8s %-8s %-8s %-10s %-11s %-9s %-4s %s\n",
              "Frequency", "#Series", "Season", "Trend", "Shift",
              "Transition", "Stationary", "|TS|<300", "F", "(paper #)");
  Row total;
  for (const auto& info : datagen::UnivariateFrequencyTable()) {
    const Row& row = rows[info.frequency];
    std::printf("%-11s %-8zu %-8zu %-8zu %-8zu %-10zu %-11zu %-9zu %-4zu (%zu)\n",
                ts::FrequencyName(info.frequency).c_str(), row.count,
                row.seasonal, row.trending, row.shifting, row.transition,
                row.stationary, row.short_series, row.horizon,
                info.paper_count);
    total.count += row.count;
    total.seasonal += row.seasonal;
    total.trending += row.trending;
    total.shifting += row.shifting;
    total.transition += row.transition;
    total.stationary += row.stationary;
    total.short_series += row.short_series;
  }
  std::printf("%-11s %-8zu %-8zu %-8zu %-8zu %-10zu %-11zu %-9zu %-4s (8068)\n",
              "Total", total.count, total.seasonal, total.trending,
              total.shifting, total.transition, total.stationary,
              total.short_series, "-");
  std::printf(
      "\nShape check: every Table 4 frequency bucket is populated and every\n"
      "characteristic appears in a nontrivial fraction of series.\n");
  return 0;
}
