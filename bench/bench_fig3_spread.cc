// Reproduces Figure 3: box-plot statistics of the normalized characteristic
// values across TFB's 25 multivariate datasets versus TSlib's 9 — TFB's
// distributions should be visibly wider on every characteristic.

#include <algorithm>
#include <cmath>

#include "bench_common.h"

namespace {

struct BoxStats {
  double min, q1, median, q3, max;
};

BoxStats Box(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  auto q = [&](double p) {
    const double pos = p * (v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    return v[lo] + (pos - lo) * (v[hi] - v[lo]);
  };
  return {v.front(), q(0.25), q(0.5), q(0.75), v.back()};
}

}  // namespace

int main() {
  using namespace tfb;
  std::printf("=== Figure 3: characteristic spread, TFB vs TSlib ===\n");
  std::printf("SCALING: generated datasets <=900 x <=6, 3 variables "
              "characterized each.\n\n");

  const std::vector<std::string> tslib = {
      "ETTh1", "ETTh2", "ETTm1", "ETTm2", "Electricity",
      "Traffic", "Weather", "Exchange", "ILI"};

  struct Sample {
    std::string name;
    characterization::Characteristics c;
  };
  // Generate every dataset, then profile the whole collection in one
  // CharacterizeBatch call (parallel across datasets, bit-identical to
  // serial Characterize).
  std::vector<std::string> names;
  std::vector<ts::TimeSeries> generated;
  for (const auto& base : datagen::MultivariateProfiles()) {
    names.push_back(base.name);
    generated.push_back(
        datagen::GenerateDataset(bench::ScaledProfile(base.name)));
  }
  const auto profiles = characterization::CharacterizeBatch(generated, 0, 3);
  std::vector<Sample> samples;
  for (std::size_t i = 0; i < names.size(); ++i) {
    samples.push_back({names[i], profiles[i]});
  }

  struct Dimension {
    const char* label;
    double (*get)(const characterization::Characteristics&);
  };
  const Dimension dims[] = {
      {"trend", [](const auto& c) { return c.trend; }},
      {"seasonality", [](const auto& c) { return c.seasonality; }},
      {"shifting", [](const auto& c) { return std::fabs(c.shifting - 0.5); }},
      {"transition", [](const auto& c) { return c.transition; }},
      {"correlation", [](const auto& c) { return c.correlation; }},
      {"stationarity", [](const auto& c) { return c.stationarity_fraction; }},
  };

  std::printf("%-13s %-6s %-8s %-8s %-8s %-8s %-8s %-8s\n", "characteristic",
              "set", "min", "q1", "median", "q3", "max", "iqr");
  int tfb_wider = 0;
  for (const Dimension& dim : dims) {
    std::vector<double> all;
    std::vector<double> sub;
    for (const auto& s : samples) {
      const double v = dim.get(s.c);
      all.push_back(v);
      if (std::find(tslib.begin(), tslib.end(), s.name) != tslib.end()) {
        sub.push_back(v);
      }
    }
    const BoxStats a = Box(all);
    const BoxStats b = Box(sub);
    std::printf("%-13s %-6s %-8.3f %-8.3f %-8.3f %-8.3f %-8.3f %-8.3f\n",
                dim.label, "TFB", a.min, a.q1, a.median, a.q3, a.max,
                a.q3 - a.q1);
    std::printf("%-13s %-6s %-8.3f %-8.3f %-8.3f %-8.3f %-8.3f %-8.3f\n",
                dim.label, "TSlib", b.min, b.q1, b.median, b.q3, b.max,
                b.q3 - b.q1);
    if (a.max - a.min >= b.max - b.min) ++tfb_wider;
  }
  std::printf(
      "\nShape check: TFB range >= TSlib range on %d of 6 characteristics "
      "(paper: TFB more diverse on all)\n",
      tfb_wider);
  return 0;
}
