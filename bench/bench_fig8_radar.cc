// Reproduces Figure 8: best MAE of the deep miniatures on the six
// characteristic-extreme datasets — FRED-MD (trend), Electricity
// (seasonality), PEMS08 (transition), NYSE (shifting), PEMS-BAY
// (correlation), Solar (stationarity).
//
// Paper shape: no deep method excels everywhere; the channel-dependent
// attention (Crossformer class) leads on the most correlated dataset;
// NLinear leads on the strongest trend/shift; the channel-independent
// attention (PatchTST class) leads on the strongest seasonality.

#include <set>

#include "bench_common.h"

int main() {
  using namespace tfb;
  std::printf("=== Figure 8: method MAE on characteristic-extreme datasets ===\n");
  std::printf(
      "SCALING: datasets <=900 x <=6, horizon 12 (paper: 24/96),\n"
      "4 rolling windows, 10 training epochs.\n\n");

  const std::vector<std::pair<std::string, std::string>> datasets = {
      {"FRED-MD", "trend"},        {"Electricity", "seasonality"},
      {"PEMS08", "transition"},    {"NYSE", "shifting"},
      {"PEMS-BAY", "correlation"}, {"Solar", "stationarity"}};
  const std::vector<std::string> methods = {
      "PatchAttention", "CrossAttention", "FrequencyLinear",
      "NLinear",        "DLinear",        "MLP",
      "TCN"};
  const std::size_t horizon = 12;

  std::vector<std::string> row_names;
  std::vector<std::vector<double>> mae;
  pipeline::BenchmarkRunner runner;
  for (const auto& [name, extreme] : datasets) {
    const auto profile = bench::ScaledProfile(name);
    const ts::TimeSeries series = datagen::GenerateDataset(profile);
    std::vector<double> row;
    for (const auto& method : methods) {
      pipeline::BenchmarkTask task;
      task.dataset = name;
      task.series = series;
      task.method = method;
      task.horizon = horizon;
      task.params = bench::FastParams(horizon);
      task.rolling = bench::FastRolling(profile.split);
      const pipeline::ResultRow result = runner.RunOne(task);
      row.push_back(result.ok ? result.metrics.at(eval::Metric::kMae) : 1e18);
    }
    row_names.push_back(name + "(" + extreme + ")");
    mae.push_back(std::move(row));
  }
  bench::PrintGrid(row_names, methods, mae);

  // Shape checks: distinct winners; channel-dependent attention at least
  // competitive on the correlation-extreme dataset.
  std::set<std::size_t> winners;
  for (const auto& row : mae) {
    std::size_t best = 0;
    for (std::size_t m = 0; m < row.size(); ++m) {
      if (row[m] < row[best]) best = m;
    }
    winners.insert(best);
  }
  std::printf(
      "\nShape check: %zu distinct winners across 6 datasets "
      "(paper: no method excels on all).\n",
      winners.size());
  return 0;
}
