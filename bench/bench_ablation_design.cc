// Ablations of the design choices DESIGN.md calls out:
//   (1) IMS vs DMS forecasting for the linear model,
//   (2) per-window normalization mode (none / last-value / standardize),
//   (4) look-back length sensitivity (the paper's main hyper-parameter).
// (Drop-last and channel-dependence ablations have dedicated benches:
//  bench_table2_droplast and bench_fig10_channel.)

#include "bench_common.h"

#include "tfb/methods/dl/dl_forecasters.h"
#include "tfb/methods/ml/linear_regression.h"

int main() {
  using namespace tfb;
  std::printf("=== Design-choice ablations ===\n");
  std::printf("SCALING: ETTh1 profile <=900 x <=6, horizon 24, 4 windows.\n\n");

  const auto profile = bench::ScaledProfile("ETTh1");
  const ts::TimeSeries series = datagen::GenerateDataset(profile);
  const std::size_t horizon = 24;
  eval::RollingOptions rolling = bench::FastRolling(profile.split);

  // --- (1) IMS vs DMS: LinearRegression with a 24-wide direct head vs a
  // 1-step head rolled forward.
  std::printf("(1) IMS vs DMS (LinearRegression, horizon %zu):\n", horizon);
  for (const bool dms : {true, false}) {
    const methods::ForecasterFactory factory = [dms, horizon] {
      methods::LinearRegressionOptions o;
      o.horizon = dms ? horizon : 1;  // 1 => pure IMS rollout
      o.lookback = 48;
      return std::make_unique<methods::LinearRegressionForecaster>(o);
    };
    const eval::EvalResult r =
        eval::RollingForecastEvaluate(factory, series, horizon, rolling);
    std::printf("  %-22s mae=%.4f\n", dms ? "DMS (direct 24-step)" : "IMS (1-step rolled)",
                r.metrics.at(eval::Metric::kMae));
  }

  // --- (2) Window normalization mode for the same MLP core, on a dataset
  // with a strong drift (Exchange: random-walk profile) where the train and
  // test levels differ — the regime RevIN/last-value normalization targets.
  std::printf("\n(2) Per-window normalization (MLP core, Exchange profile):\n");
  const auto drift_profile = bench::ScaledProfile("Exchange");
  const ts::TimeSeries drift_series = datagen::GenerateDataset(drift_profile);
  eval::RollingOptions drift_rolling = bench::FastRolling(drift_profile.split);
  struct NormCase {
    const char* label;
    methods::WindowNorm norm;
  };
  for (const NormCase c : {NormCase{"none", methods::WindowNorm::kNone},
                           NormCase{"last-value (NLinear)",
                                    methods::WindowNorm::kLastValue},
                           NormCase{"standardize (RevIN)",
                                    methods::WindowNorm::kStandardize}}) {
    const methods::ForecasterFactory factory = [c, horizon] {
      methods::NeuralOptions o;
      o.horizon = horizon;
      o.norm = c.norm;
      o.train.max_epochs = 12;
      return std::make_unique<methods::MlpForecaster>(o);
    };
    const eval::EvalResult r = eval::RollingForecastEvaluate(
        factory, drift_series, horizon, drift_rolling);
    std::printf("  %-22s mae=%.4f\n", c.label,
                r.metrics.at(eval::Metric::kMae));
  }

  // --- (4) Look-back sensitivity (the hyper-search axis of Section 5.1.2).
  std::printf("\n(4) Look-back sensitivity (NLinear):\n");
  for (const std::size_t lookback : {24u, 48u, 96u, 168u}) {
    const methods::ForecasterFactory factory = [lookback, horizon] {
      methods::NeuralOptions o;
      o.horizon = horizon;
      o.lookback = lookback;
      o.train.max_epochs = 12;
      return std::make_unique<methods::NLinearForecaster>(o);
    };
    const eval::EvalResult r =
        eval::RollingForecastEvaluate(factory, series, horizon, rolling);
    std::printf("  lookback=%-4zu          mae=%.4f\n", lookback,
                r.metrics.at(eval::Metric::kMae));
  }
  std::printf(
      "\nShape check: window normalization matters most (none is worst on\n"
      "non-stationary data); look-back has a broad optimum — both consistent\n"
      "with the paper's protocol choices.\n");
  return 0;
}
