// Reproduces Figure 10: channel independence (PatchTST class) versus
// channel dependence (Crossformer class) as a function of dataset
// correlation. Ten synthetic datasets sweep the common-factor share from
// nearly independent channels to nearly identical ones.
//
// Paper shape: as within-dataset correlation rises, the channel-dependent
// model's MAE catches up with and overtakes the channel-independent one;
// on weakly correlated data channel independence wins.

#include "bench_common.h"

int main() {
  using namespace tfb;
  std::printf("=== Figure 10: channel independence vs dependence ===\n");
  std::printf(
      "SCALING: 10 synthetic datasets (700 x 6), horizon 12 (paper: 96),\n"
      "4 rolling windows, 12 training epochs.\n\n");
  std::printf("%-8s %-12s %-18s %-18s %s\n", "share", "correlation",
              "PatchAttention", "CrossAttention", "winner");

  pipeline::BenchmarkRunner runner;
  int cross_wins_high = 0;
  int patch_wins_low = 0;
  for (int step = 0; step < 10; ++step) {
    const double share = 0.05 + 0.1 * step;
    datagen::MultivariateSpec spec;
    // A slowly mixing AR factor read by each channel at its own delay:
    // leading channels carry information about lagging channels' futures
    // that the lagging channel's own past does not contain — exploitable
    // only by channel-dependent models, and only when the common factor
    // dominates (high share / high correlation).
    spec.factor_spec.length = 700;
    spec.factor_spec.period = 24;
    spec.factor_spec.season_amplitude = 0.8;
    spec.factor_spec.noise_std = 1.0;
    spec.factor_spec.ar_coeff = 0.9;
    spec.num_variables = 6;
    spec.num_factors = 1;
    spec.factor_share = share;
    spec.idiosyncratic_std = 1.2 - share;
    spec.max_channel_lag = 8;
    stats::Rng rng(1000 + step);
    ts::TimeSeries series = datagen::GenerateMultivariate(spec, rng);
    series.set_name("corr_sweep");
    series.set_seasonal_period(24);
    const double correlation = characterization::CorrelationValue(series, 6);

    double mae_patch = 0.0;
    double mae_cross = 0.0;
    for (const char* method : {"PatchAttention", "CrossAttention"}) {
      pipeline::BenchmarkTask task;
      task.dataset = "corr_sweep";
      task.series = series;
      task.method = method;
      task.horizon = 6;
      pipeline::MethodParams params = bench::FastParams(6);
      params.train_epochs = 15;
      params.lookback = 24;
      task.params = params;
      task.rolling = bench::FastRolling(ts::SplitRatio::Ratio712());
      const pipeline::ResultRow result = runner.RunOne(task);
      const double mae = result.metrics.at(eval::Metric::kMae);
      if (std::string(method) == "PatchAttention") {
        mae_patch = mae;
      } else {
        mae_cross = mae;
      }
    }
    const bool cross_wins = mae_cross < mae_patch;
    std::printf("%-8.2f %-12.3f %-18.4f %-18.4f %s\n", share, correlation,
                mae_patch, mae_cross,
                cross_wins ? "CrossAttention" : "PatchAttention");
    if (step >= 7 && cross_wins) ++cross_wins_high;
    if (step <= 2 && !cross_wins) ++patch_wins_low;
  }
  std::printf(
      "\nShape check: channel dependence wins %d/3 of the most correlated\n"
      "datasets; channel independence wins %d/3 of the least correlated\n"
      "(paper: crossover as correlation rises).\n",
      cross_wins_high, patch_wins_low);
  return 0;
}
