// Reproduces Tables 7-8: the multivariate study — rolling-strategy MAE/MSE
// of the method zoo on all 25 datasets, reported on normalized data, with
// datasets ordered by trend strength (weak-trend first, as in the paper).
//
// Paper shape to reproduce: no single winner; attention miniatures lead on
// weak-trend/seasonal datasets (Table 7); linear miniatures and the
// traditional LR/VAR lead on strong-trend datasets (Table 8); VAR produces
// extreme errors on some hard datasets (the paper's huge VAR cells).

#include <algorithm>

#include "bench_common.h"

int main() {
  using namespace tfb;
  std::printf("=== Tables 7-8: multivariate forecasting results ===\n");
  std::printf(
      "SCALING: 25 datasets at <=900 x <=6, one scaled horizon per dataset\n"
      "(12 for short-horizon datasets, 24 for long), 3 rolling windows,\n"
      "12 method miniatures (one per paper family), 8 training epochs.\n\n");

  // One miniature per paper column family (see DESIGN.md mapping).
  const std::vector<std::string> methods = {
      "PatchAttention",   // PatchTST
      "CrossAttention",   // Crossformer / Triformer
      "FrequencyLinear",  // FEDformer / FiLM
      "NLinear", "DLinear",
      "MLP",              // TiDE family
      "N-BEATS",
      "StationaryMLP",    // Non-stationary Transformer idea
      "TCN",              // TCN / MICN / TimesNet (CNN family)
      "RNN",
      "LinearRegression", "VAR"};

  struct Row {
    std::string dataset;
    double trend = 0.0;
    std::size_t horizon = 0;
    std::vector<double> mae;
    std::vector<double> mse;
  };
  std::vector<Row> rows;

  pipeline::BenchmarkRunner runner;
  // Generate all 25 datasets first and measure trend strength with one
  // CharacterizeBatch call (parallel across datasets, bit-identical to
  // serial Characterize).
  const auto bases = datagen::MultivariateProfiles();
  std::vector<ts::TimeSeries> generated;
  for (const auto& base : bases) {
    generated.push_back(
        datagen::GenerateDataset(bench::ScaledProfile(base.name)));
  }
  const auto profiles = characterization::CharacterizeBatch(generated, 0, 2);
  for (std::size_t b = 0; b < bases.size(); ++b) {
    const auto& base = bases[b];
    const auto profile = bench::ScaledProfile(base.name);
    const ts::TimeSeries& series = generated[b];
    Row row;
    row.dataset = base.name;
    row.horizon = base.long_horizon ? 24 : 12;
    row.trend = profiles[b].trend;
    for (const auto& method : methods) {
      pipeline::BenchmarkTask task;
      task.dataset = base.name;
      task.series = series;
      task.method = method;
      task.horizon = row.horizon;
      pipeline::MethodParams params = bench::FastParams(row.horizon);
      params.train_epochs = 8;
      task.params = params;
      task.rolling = bench::FastRolling(profile.split, 3);
      const pipeline::ResultRow result = runner.RunOne(task);
      row.mae.push_back(result.ok ? result.metrics.at(eval::Metric::kMae)
                                  : 1e18);
      row.mse.push_back(result.ok ? result.metrics.at(eval::Metric::kMse)
                                  : 1e18);
    }
    rows.push_back(std::move(row));
    std::fprintf(stderr, "[table78] %s done\n", base.name.c_str());
  }

  // Order by trend strength, weak first (Table 7 -> Table 8 ordering).
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.trend < b.trend; });

  std::printf("%-12s %-4s %-6s", "dataset", "h", "trend");
  for (const auto& m : methods) std::printf("%-16s", m.c_str());
  std::printf("best\n");
  std::map<std::string, std::size_t> wins;
  std::map<std::string, std::size_t> weak_trend_wins;
  std::map<std::string, std::size_t> strong_trend_wins;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const Row& row = rows[r];
    std::printf("%-12s %-4zu %-6.2f", row.dataset.c_str(), row.horizon,
                row.trend);
    std::size_t best = 0;
    for (std::size_t m = 0; m < methods.size(); ++m) {
      if (row.mae[m] < row.mae[best]) best = m;
      std::printf("%-16.3f", row.mae[m]);
    }
    std::printf("%s\n", methods[best].c_str());
    ++wins[methods[best]];
    if (r < rows.size() / 2) {
      ++weak_trend_wins[methods[best]];
    } else {
      ++strong_trend_wins[methods[best]];
    }
  }

  std::printf("\nWins per method (MAE):\n");
  for (const auto& [m, w] : wins) std::printf("  %-18s %zu\n", m.c_str(), w);

  auto family_wins = [&](const std::map<std::string, std::size_t>& tally,
                         pipeline::Family family) {
    std::size_t total = 0;
    for (const auto& [m, w] : tally) {
      if (pipeline::MethodFamily(m) == family) total += w;
    }
    return total;
  };
  std::printf(
      "\nShape check (paper: transformers lead on weak trend, linear-class "
      "on strong trend):\n");
  std::printf("  weak-trend half : transformer wins=%zu linear wins=%zu\n",
              family_wins(weak_trend_wins, pipeline::Family::kTransformer),
              family_wins(weak_trend_wins, pipeline::Family::kLinear) +
                  family_wins(weak_trend_wins, pipeline::Family::kMl));
  std::printf("  strong-trend half: transformer wins=%zu linear wins=%zu\n",
              family_wins(strong_trend_wins, pipeline::Family::kTransformer),
              family_wins(strong_trend_wins, pipeline::Family::kLinear) +
                  family_wins(strong_trend_wins, pipeline::Family::kMl));
  std::printf("  no single method wins everywhere: %s\n",
              wins.size() > 1 ? "yes" : "no");
  return 0;
}
