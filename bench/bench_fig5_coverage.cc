// Reproduces Figure 5: PCA coverage maps of univariate archives. Each
// series becomes a 5-D characteristic vector (trend, seasonality,
// stationarity, shifting, transition); PCA projects to 2-D; coverage is the
// number of occupied cells of a fixed grid (the paper's hexbin analogue).
// TFB's curated collection should cover at least as many cells as every
// restricted archive.

#include <cmath>
#include <set>

#include "bench_common.h"

namespace {

using tfb::characterization::Characteristics;

std::vector<double> FeatureVector(const std::vector<double>& x,
                                  std::size_t period) {
  const auto strengths =
      tfb::characterization::ComputeStlStrengths(x, period > 1 ? period : 0);
  return {strengths.trend, strengths.seasonality,
          tfb::characterization::IsStationary(x) ? 1.0 : 0.0,
          tfb::characterization::ShiftingValue(x),
          tfb::characterization::TransitionValue(x)};
}

}  // namespace

int main() {
  using namespace tfb;
  std::printf("=== Figure 5: PCA coverage of univariate archives ===\n");
  std::printf(
      "SCALING: ~240 series per archive simulation; archives other than TFB\n"
      "are simulated with the restricted characteristic mixes their source\n"
      "domains imply (M4 = broad; M3/Monash = trend-dominated business\n"
      "series; Libra = low-frequency ops series).\n\n");

  stats::Rng rng(2024);
  struct Archive {
    std::string name;
    std::vector<std::vector<double>> features;
  };
  std::vector<Archive> archives;

  // TFB: the stratified collection itself.
  {
    datagen::UnivariateCollectionOptions options;
    options.scale = 0.03;
    Archive archive{"TFB", {}};
    for (const auto& e : datagen::GenerateUnivariateCollection(options)) {
      archive.features.push_back(
          FeatureVector(e.series.Column(0), e.series.seasonal_period()));
    }
    archives.push_back(std::move(archive));
  }
  // Restricted archives: narrower characteristic mixes.
  struct Mix {
    std::string name;
    double p_season, p_trend, p_shift, p_rw;
    std::size_t period;
  };
  const Mix mixes[] = {
      {"M4", 0.5, 0.6, 0.5, 0.5, 12},
      {"M3", 0.3, 0.9, 0.2, 0.7, 12},      // yearly/quarterly business data
      {"Monash", 0.7, 0.4, 0.2, 0.3, 12},  // seasonal archives
      {"Libra", 0.8, 0.2, 0.1, 0.2, 24},   // ops/IoT series
  };
  for (const Mix& mix : mixes) {
    Archive archive{mix.name, {}};
    for (int i = 0; i < 240; ++i) {
      datagen::SeriesSpec spec;
      spec.length = 120 + rng.UniformInt(360);
      spec.noise_std = rng.Uniform(0.4, 1.0);
      if (rng.Bernoulli(mix.p_season)) {
        spec.period = mix.period;
        spec.season_amplitude = rng.Uniform(1.0, 3.0);
      }
      if (rng.Bernoulli(mix.p_trend)) {
        spec.trend_slope = rng.Uniform(2.0, 8.0) / spec.length;
      }
      if (rng.Bernoulli(mix.p_shift)) {
        spec.shift_position = rng.Uniform(0.3, 0.8);
        spec.shift_magnitude = rng.Gaussian(0.0, 2.0);
      }
      if (rng.Bernoulli(mix.p_rw)) spec.random_walk_std = 0.15;
      archive.features.push_back(
          FeatureVector(datagen::GenerateSeries(spec, rng), spec.period));
    }
    archives.push_back(std::move(archive));
  }

  // Joint PCA over all archives (as the paper fits one projection).
  std::size_t total = 0;
  for (const auto& a : archives) total += a.features.size();
  linalg::Matrix data(total, 5);
  std::size_t row = 0;
  for (const auto& a : archives) {
    for (const auto& f : a.features) {
      for (std::size_t c = 0; c < 5; ++c) data(row, c) = f[c];
      ++row;
    }
  }
  const characterization::Pca pca = characterization::Pca::Fit(data);
  const linalg::Matrix projected = pca.Transform(data, 2);

  // Shared grid bounds.
  double x_min = 1e300, x_max = -1e300, y_min = 1e300, y_max = -1e300;
  for (std::size_t r = 0; r < projected.rows(); ++r) {
    x_min = std::min(x_min, projected(r, 0));
    x_max = std::max(x_max, projected(r, 0));
    y_min = std::min(y_min, projected(r, 1));
    y_max = std::max(y_max, projected(r, 1));
  }
  const int grid = 12;
  std::printf("%-10s %-8s %s\n", "archive", "series", "occupied cells (of 144)");
  row = 0;
  std::size_t tfb_cells = 0;
  std::size_t best_other = 0;
  for (const auto& a : archives) {
    std::set<int> cells;
    for (std::size_t i = 0; i < a.features.size(); ++i, ++row) {
      const int cx = std::min(
          grid - 1, static_cast<int>((projected(row, 0) - x_min) /
                                     (x_max - x_min + 1e-12) * grid));
      const int cy = std::min(
          grid - 1, static_cast<int>((projected(row, 1) - y_min) /
                                     (y_max - y_min + 1e-12) * grid));
      cells.insert(cx * grid + cy);
    }
    std::printf("%-10s %-8zu %zu\n", a.name.c_str(), a.features.size(),
                cells.size());
    if (a.name == "TFB") {
      tfb_cells = cells.size();
    } else if (a.name != "M4") {
      best_other = std::max(best_other, cells.size());
    }
  }
  std::printf(
      "\nShape check: TFB occupies %zu cells, >= every restricted archive "
      "(best restricted non-M4: %zu); paper: TFB and M4 cover the most.\n",
      tfb_cells, best_other);
  return 0;
}
