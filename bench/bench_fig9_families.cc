// Reproduces Figure 9: best MAE per architecture family — Transformer
// (attention miniatures), Linear (NLinear/DLinear), CNN (TCN) — across
// datasets with contrasting characteristics, marking the winner per
// dataset (the paper's red triangles).
//
// Paper shape: linear methods win on increasing-trend / strong-shift data;
// transformers win on marked seasonality / stationarity / nonlinearity.
// Also runs the RevIN ablation called out in DESIGN.md: the same MLP core
// with and without per-window standardization on a drifting dataset.

#include "bench_common.h"

int main() {
  using namespace tfb;
  std::printf("=== Figure 9: Transformer vs Linear vs CNN (best family MAE) ===\n");
  std::printf(
      "SCALING: datasets <=900 x <=6, horizon 12, 4 rolling windows,\n"
      "10 training epochs; family best over its miniatures.\n\n");

  const std::vector<std::string> datasets = {
      "NASDAQ", "NYSE",     "FRED-MD",  "Exchange", "NN5",
      "ILI",    "Electricity", "Traffic", "PEMS08",  "Solar"};
  const std::vector<std::pair<std::string, std::vector<std::string>>>
      families = {
          {"Transformer", {"PatchAttention", "CrossAttention"}},
          {"Linear", {"NLinear", "DLinear"}},
          {"CNN", {"TCN"}},
      };
  const std::size_t horizon = 12;

  pipeline::BenchmarkRunner runner;
  std::vector<std::vector<double>> mae(datasets.size());
  // Generate every dataset up front and profile the collection with one
  // CharacterizeBatch call (parallel across datasets, bit-identical to
  // serial Characterize).
  std::vector<ts::TimeSeries> generated;
  for (const auto& name : datasets) {
    generated.push_back(
        datagen::GenerateDataset(bench::ScaledProfile(name)));
  }
  const auto profiles = characterization::CharacterizeBatch(generated, 0, 2);
  std::vector<double> trend_strength(datasets.size());
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    trend_strength[d] = profiles[d].trend;
  }
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    const auto profile = bench::ScaledProfile(datasets[d]);
    const ts::TimeSeries& series = generated[d];
    for (const auto& [family, methods] : families) {
      double best = 1e18;
      for (const auto& method : methods) {
        pipeline::BenchmarkTask task;
        task.dataset = datasets[d];
        task.series = series;
        task.method = method;
        task.horizon = horizon;
        task.params = bench::FastParams(horizon);
        task.rolling = bench::FastRolling(profile.split);
        const pipeline::ResultRow result = runner.RunOne(task);
        if (result.ok) {
          best = std::min(best, result.metrics.at(eval::Metric::kMae));
        }
      }
      mae[d].push_back(best);
    }
  }

  std::vector<std::string> family_names;
  for (const auto& [family, methods] : families) family_names.push_back(family);
  bench::PrintGrid(datasets, family_names, mae);

  std::size_t linear_wins_on_trend = 0;
  std::size_t trend_datasets = 0;
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    if (trend_strength[d] < 0.6) continue;
    ++trend_datasets;
    if (mae[d][1] <= mae[d][0] && mae[d][1] <= mae[d][2]) {
      ++linear_wins_on_trend;
    }
  }
  std::printf(
      "\nShape check: linear family wins %zu of %zu strong-trend datasets "
      "(paper: linear excels on trend/shift).\n",
      linear_wins_on_trend, trend_datasets);

  // --- RevIN ablation (design-choice #3 in DESIGN.md) ---
  std::printf("\nRevIN ablation: MLP with (StationaryMLP) vs without\n"
              "(plain MLP, last-value norm) per-window standardization on a\n"
              "strongly drifting dataset (Exchange profile):\n");
  const auto profile = bench::ScaledProfile("Exchange");
  const ts::TimeSeries series = datagen::GenerateDataset(profile);
  for (const char* method : {"StationaryMLP", "MLP"}) {
    pipeline::BenchmarkTask task;
    task.dataset = "Exchange";
    task.series = series;
    task.method = method;
    task.horizon = horizon;
    task.params = bench::FastParams(horizon);
    task.rolling = bench::FastRolling(profile.split);
    const pipeline::ResultRow result = runner.RunOne(task);
    std::printf("  %-14s mae=%.4f\n", method,
                result.metrics.at(eval::Metric::kMae));
  }
  return 0;
}
