// Reproduces Table 5: statistics of the 25 multivariate datasets — the
// paper's published length/dimension/frequency/split per dataset, alongside
// the scaled sizes this reproduction generates and each dataset's measured
// six-characteristic profile.

#include "bench_common.h"

int main() {
  using namespace tfb;
  std::printf("=== Table 5: multivariate dataset statistics ===\n");
  std::printf(
      "SCALING: generated copies capped at 900 x 6; characteristics are\n"
      "measured on up to 3 variables per dataset.\n\n");
  std::printf("%-12s %-12s %-9s %-8s %-5s %-6s %-7s %-7s %-7s %-7s %-7s %s\n",
              "Dataset", "Domain", "Freq", "Len", "Dim", "Split", "trend",
              "season", "shift", "trans", "corr", "stationary");
  // Generate all datasets first, then profile them in one batched call
  // (parallel across datasets, bit-identical to serial Characterize).
  const auto bases = datagen::MultivariateProfiles();
  std::vector<ts::TimeSeries> generated;
  for (const auto& base : bases) {
    generated.push_back(
        datagen::GenerateDataset(bench::ScaledProfile(base.name)));
  }
  const auto profiles = characterization::CharacterizeBatch(generated, 0, 3);
  for (std::size_t i = 0; i < bases.size(); ++i) {
    const auto& base = bases[i];
    const auto& c = profiles[i];
    const char* split =
        base.split.val > 0.15 ? "6:2:2" : "7:1:2";
    std::printf(
        "%-12s %-12s %-9s %-8zu %-5zu %-6s %-7.3f %-7.3f %-7.3f %-7.4f "
        "%-7.3f %s\n",
        base.name.c_str(), ts::DomainName(base.domain).c_str(),
        ts::FrequencyName(base.frequency).c_str(), base.paper_length,
        base.paper_dim, split, c.trend, c.seasonality, c.shifting,
        c.transition, c.correlation, c.stationary ? "yes" : "no");
  }
  std::printf(
      "\nShape check: 25 datasets across 10 domains; frequencies span\n"
      "5 mins..1 month; dims span 5..2000; FRED-MD/Covid-19 most trending,\n"
      "traffic/electricity most seasonal, stock profiles most shifted.\n");
  return 0;
}
