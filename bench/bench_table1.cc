// Reproduces Table 1: the statistical methods VAR and LinearRegression
// versus recent deep methods on NASDAQ, Wind, and ILI (MAE, horizon 24).
// Expected shape (paper): VAR best on NASDAQ, LR best on Wind, and the
// traditional methods competitive with (or beating) several deep models on
// ILI — the paper's "stereotype bias" evidence.

#include "bench_common.h"

int main() {
  using namespace tfb;
  std::printf("=== Table 1: VAR & LR vs deep methods (MAE) ===\n");
  std::printf(
      "SCALING: datasets <=900 points x <=6 dims, horizon 12 (paper: 24),\n"
      "4 rolling windows, DL miniatures with 10 epochs.\n\n");

  const std::vector<std::string> datasets = {"NASDAQ", "Wind", "ILI"};
  // Paper columns: VAR, LR, PatchTST, NLinear, FEDformer, Crossformer.
  const std::vector<std::string> methods = {
      "VAR", "LinearRegression", "PatchAttention",
      "NLinear", "FrequencyLinear", "CrossAttention"};
  const std::size_t horizon = 12;

  std::vector<std::vector<double>> mae(datasets.size(),
                                       std::vector<double>(methods.size()));
  pipeline::BenchmarkRunner runner;
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    const auto profile = bench::ScaledProfile(datasets[d]);
    const ts::TimeSeries series = datagen::GenerateDataset(profile);
    for (std::size_t m = 0; m < methods.size(); ++m) {
      pipeline::BenchmarkTask task;
      task.dataset = datasets[d];
      task.series = series;
      task.method = methods[m];
      task.horizon = horizon;
      task.params = bench::FastParams(horizon);
      task.rolling = bench::FastRolling(profile.split);
      const pipeline::ResultRow row = runner.RunOne(task);
      mae[d][m] = row.ok ? row.metrics.at(eval::Metric::kMae) : 1e18;
    }
  }
  bench::PrintGrid(datasets, methods, mae);

  // The paper's headline: on at least one of the three datasets a
  // traditional method (VAR or LR) beats every deep model.
  int traditional_wins = 0;
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    const double best_traditional = std::min(mae[d][0], mae[d][1]);
    double best_deep = 1e18;
    for (std::size_t m = 2; m < methods.size(); ++m) {
      best_deep = std::min(best_deep, mae[d][m]);
    }
    if (best_traditional <= best_deep) ++traditional_wins;
  }
  std::printf(
      "\nTraditional methods (VAR/LR) win %d of %zu datasets "
      "(paper shape: >= 2 of 3)\n",
      traditional_wins, datasets.size());
  return 0;
}
