#ifndef TFB_BENCH_BENCH_COMMON_H_
#define TFB_BENCH_BENCH_COMMON_H_

// Shared helpers for the table/figure reproduction benches. Every bench
// prints the paper-shaped rows plus a SCALING note documenting how the
// workload was shrunk to single-core CPU budgets (the *shape* of each
// result — who wins, where crossovers fall — is the reproduction target,
// not absolute values; see EXPERIMENTS.md).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "tfb/tfb.h"

namespace tfb::bench {

/// CPU-scaled copy of a Table 5 profile: bounded length/width so a full
/// 25-dataset sweep stays in minutes on one core.
inline datagen::DatasetProfile ScaledProfile(const std::string& name,
                                             std::size_t max_length = 900,
                                             std::size_t max_dim = 6) {
  auto profile = datagen::FindProfile(name);
  TFB_CHECK_MSG(profile.has_value(), "unknown dataset profile");
  profile->length = std::min(profile->length, max_length);
  profile->dim = std::min(profile->dim, max_dim);
  profile->spec.factor_spec.length = profile->length;
  profile->spec.num_variables = profile->dim;
  profile->spec.num_factors =
      std::max<std::size_t>(2, profile->dim / 3);
  // Long-period profiles need a few cycles inside the scaled length.
  if (profile->spec.factor_spec.period * 6 > profile->length) {
    profile->spec.factor_spec.period =
        std::max<std::size_t>(4, profile->length / 12);
  }
  return profile.value();
}

/// Fast method parameters for bench runs: few epochs, small window caps.
inline pipeline::MethodParams FastParams(std::size_t horizon,
                                         std::uint64_t seed = 7) {
  pipeline::MethodParams params;
  params.horizon = horizon;
  params.seed = seed;
  params.train_epochs = 10;
  return params;
}

/// Rolling options used across MTSF benches: z-score normalization fit on
/// train, a handful of test windows, fair (no drop-last) batching.
inline eval::RollingOptions FastRolling(const ts::SplitRatio& split,
                                        std::size_t max_windows = 4) {
  eval::RollingOptions options;
  options.split = split;
  options.max_windows = max_windows;
  options.metrics = {eval::Metric::kMae, eval::Metric::kMse};
  return options;
}

/// Prints a dataset x method MAE grid with per-row winners marked.
inline void PrintGrid(const std::vector<std::string>& row_names,
                      const std::vector<std::string>& col_names,
                      const std::vector<std::vector<double>>& mae,
                      const char* value_label = "MAE") {
  std::printf("%-16s", "dataset");
  for (const auto& c : col_names) std::printf("%-16s", c.c_str());
  std::printf("  best(%s)\n", value_label);
  for (std::size_t r = 0; r < row_names.size(); ++r) {
    std::printf("%-16s", row_names[r].c_str());
    std::size_t best = 0;
    for (std::size_t c = 0; c < col_names.size(); ++c) {
      if (mae[r][c] < mae[r][best]) best = c;
    }
    for (std::size_t c = 0; c < col_names.size(); ++c) {
      std::printf("%-16.4f", mae[r][c]);
    }
    std::printf("  %s\n", col_names[best].c_str());
  }
}

}  // namespace tfb::bench

#endif  // TFB_BENCH_BENCH_COMMON_H_
