// Reproduces Figure 11: parameter counts versus per-window inference time
// of the deep miniatures on three dataset scales — Traffic (large), Weather
// (medium), ILI (small). Inference timing uses google-benchmark.
//
// Paper shape: inference time grows with parameter count; the linear family
// is cheapest; among attention models the patch-based one is faster than
// the cross-channel one.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.h"

namespace {

using namespace tfb;

struct Prepared {
  std::unique_ptr<methods::Forecaster> forecaster;
  ts::TimeSeries history;
  std::size_t horizon = 12;
  std::size_t num_parameters = 0;
};

Prepared Prepare(const std::string& dataset, const std::string& method) {
  const auto profile = bench::ScaledProfile(dataset);
  const ts::TimeSeries series = datagen::GenerateDataset(profile);
  const ts::Split split = ChronologicalSplit(series, profile.split);
  Prepared p;
  const auto config = pipeline::MakeMethod(method, bench::FastParams(12));
  p.forecaster = config->factory();
  p.forecaster->Fit(series.Slice(0, split.val_end));
  p.history = series.Slice(0, split.val_end);
  if (const auto* neural =
          dynamic_cast<const methods::NeuralForecaster*>(p.forecaster.get())) {
    p.num_parameters = neural->NumParameters();
  }
  return p;
}

const std::vector<std::string> kMethods = {
    "NLinear", "DLinear", "MLP",           "N-BEATS",
    "RNN",     "TCN",     "PatchAttention", "CrossAttention",
    "FrequencyLinear"};
const std::vector<std::string> kDatasets = {"Traffic", "Weather", "ILI"};

std::map<std::string, Prepared>& PreparedModels() {
  static auto* models = new std::map<std::string, Prepared>();
  return *models;
}

void BM_Inference(benchmark::State& state, const std::string& key) {
  Prepared& p = PreparedModels().at(key);
  for (auto _ : state) {
    const ts::TimeSeries f = p.forecaster->Forecast(p.history, p.horizon);
    benchmark::DoNotOptimize(f.values().data());
  }
  state.counters["params"] =
      static_cast<double>(p.num_parameters);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Figure 11: parameter count vs inference time ===\n");
  std::printf(
      "SCALING: datasets <=900 x <=6 (paper: full Traffic/Weather/ILI);\n"
      "one forecast window per iteration, horizon 12.\n\n");
  std::printf("%-10s %-18s %s\n", "dataset", "method", "parameters");
  for (const auto& dataset : kDatasets) {
    for (const auto& method : kMethods) {
      const std::string key = dataset + "/" + method;
      PreparedModels().emplace(key, Prepare(dataset, method));
      std::printf("%-10s %-18s %zu\n", dataset.c_str(), method.c_str(),
                  PreparedModels().at(key).num_parameters);
      benchmark::RegisterBenchmark(key.c_str(),
                                   [key](benchmark::State& state) {
                                     BM_Inference(state, key);
                                   });
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
