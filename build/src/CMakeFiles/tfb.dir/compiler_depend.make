# Empty compiler generated dependencies file for tfb.
# This may be replaced when dependencies are built.
