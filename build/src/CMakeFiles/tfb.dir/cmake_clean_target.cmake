file(REMOVE_RECURSE
  "libtfb.a"
)
