
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tfb/characterization/adf.cc" "src/CMakeFiles/tfb.dir/tfb/characterization/adf.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/characterization/adf.cc.o.d"
  "/root/repo/src/tfb/characterization/catch22.cc" "src/CMakeFiles/tfb.dir/tfb/characterization/catch22.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/characterization/catch22.cc.o.d"
  "/root/repo/src/tfb/characterization/features.cc" "src/CMakeFiles/tfb.dir/tfb/characterization/features.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/characterization/features.cc.o.d"
  "/root/repo/src/tfb/characterization/pca.cc" "src/CMakeFiles/tfb.dir/tfb/characterization/pca.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/characterization/pca.cc.o.d"
  "/root/repo/src/tfb/datagen/generator.cc" "src/CMakeFiles/tfb.dir/tfb/datagen/generator.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/datagen/generator.cc.o.d"
  "/root/repo/src/tfb/datagen/registry.cc" "src/CMakeFiles/tfb.dir/tfb/datagen/registry.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/datagen/registry.cc.o.d"
  "/root/repo/src/tfb/eval/metrics.cc" "src/CMakeFiles/tfb.dir/tfb/eval/metrics.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/eval/metrics.cc.o.d"
  "/root/repo/src/tfb/eval/strategy.cc" "src/CMakeFiles/tfb.dir/tfb/eval/strategy.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/eval/strategy.cc.o.d"
  "/root/repo/src/tfb/fft/fft.cc" "src/CMakeFiles/tfb.dir/tfb/fft/fft.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/fft/fft.cc.o.d"
  "/root/repo/src/tfb/linalg/matrix.cc" "src/CMakeFiles/tfb.dir/tfb/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/linalg/matrix.cc.o.d"
  "/root/repo/src/tfb/linalg/solve.cc" "src/CMakeFiles/tfb.dir/tfb/linalg/solve.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/linalg/solve.cc.o.d"
  "/root/repo/src/tfb/methods/dl/dl_forecasters.cc" "src/CMakeFiles/tfb.dir/tfb/methods/dl/dl_forecasters.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/methods/dl/dl_forecasters.cc.o.d"
  "/root/repo/src/tfb/methods/dl/neural_forecaster.cc" "src/CMakeFiles/tfb.dir/tfb/methods/dl/neural_forecaster.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/methods/dl/neural_forecaster.cc.o.d"
  "/root/repo/src/tfb/methods/ml/decision_tree.cc" "src/CMakeFiles/tfb.dir/tfb/methods/ml/decision_tree.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/methods/ml/decision_tree.cc.o.d"
  "/root/repo/src/tfb/methods/ml/gradient_boosting.cc" "src/CMakeFiles/tfb.dir/tfb/methods/ml/gradient_boosting.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/methods/ml/gradient_boosting.cc.o.d"
  "/root/repo/src/tfb/methods/ml/linear_regression.cc" "src/CMakeFiles/tfb.dir/tfb/methods/ml/linear_regression.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/methods/ml/linear_regression.cc.o.d"
  "/root/repo/src/tfb/methods/ml/random_forest.cc" "src/CMakeFiles/tfb.dir/tfb/methods/ml/random_forest.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/methods/ml/random_forest.cc.o.d"
  "/root/repo/src/tfb/methods/ml/window.cc" "src/CMakeFiles/tfb.dir/tfb/methods/ml/window.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/methods/ml/window.cc.o.d"
  "/root/repo/src/tfb/methods/naive.cc" "src/CMakeFiles/tfb.dir/tfb/methods/naive.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/methods/naive.cc.o.d"
  "/root/repo/src/tfb/methods/statistical/arima.cc" "src/CMakeFiles/tfb.dir/tfb/methods/statistical/arima.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/methods/statistical/arima.cc.o.d"
  "/root/repo/src/tfb/methods/statistical/ets.cc" "src/CMakeFiles/tfb.dir/tfb/methods/statistical/ets.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/methods/statistical/ets.cc.o.d"
  "/root/repo/src/tfb/methods/statistical/kalman.cc" "src/CMakeFiles/tfb.dir/tfb/methods/statistical/kalman.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/methods/statistical/kalman.cc.o.d"
  "/root/repo/src/tfb/methods/statistical/theta.cc" "src/CMakeFiles/tfb.dir/tfb/methods/statistical/theta.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/methods/statistical/theta.cc.o.d"
  "/root/repo/src/tfb/methods/statistical/var.cc" "src/CMakeFiles/tfb.dir/tfb/methods/statistical/var.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/methods/statistical/var.cc.o.d"
  "/root/repo/src/tfb/nn/attention.cc" "src/CMakeFiles/tfb.dir/tfb/nn/attention.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/nn/attention.cc.o.d"
  "/root/repo/src/tfb/nn/conv.cc" "src/CMakeFiles/tfb.dir/tfb/nn/conv.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/nn/conv.cc.o.d"
  "/root/repo/src/tfb/nn/gru.cc" "src/CMakeFiles/tfb.dir/tfb/nn/gru.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/nn/gru.cc.o.d"
  "/root/repo/src/tfb/nn/module.cc" "src/CMakeFiles/tfb.dir/tfb/nn/module.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/nn/module.cc.o.d"
  "/root/repo/src/tfb/nn/nets.cc" "src/CMakeFiles/tfb.dir/tfb/nn/nets.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/nn/nets.cc.o.d"
  "/root/repo/src/tfb/nn/trainer.cc" "src/CMakeFiles/tfb.dir/tfb/nn/trainer.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/nn/trainer.cc.o.d"
  "/root/repo/src/tfb/optimize/nelder_mead.cc" "src/CMakeFiles/tfb.dir/tfb/optimize/nelder_mead.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/optimize/nelder_mead.cc.o.d"
  "/root/repo/src/tfb/pipeline/config.cc" "src/CMakeFiles/tfb.dir/tfb/pipeline/config.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/pipeline/config.cc.o.d"
  "/root/repo/src/tfb/pipeline/method_registry.cc" "src/CMakeFiles/tfb.dir/tfb/pipeline/method_registry.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/pipeline/method_registry.cc.o.d"
  "/root/repo/src/tfb/pipeline/runner.cc" "src/CMakeFiles/tfb.dir/tfb/pipeline/runner.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/pipeline/runner.cc.o.d"
  "/root/repo/src/tfb/report/ascii_plot.cc" "src/CMakeFiles/tfb.dir/tfb/report/ascii_plot.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/report/ascii_plot.cc.o.d"
  "/root/repo/src/tfb/report/report.cc" "src/CMakeFiles/tfb.dir/tfb/report/report.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/report/report.cc.o.d"
  "/root/repo/src/tfb/stats/descriptive.cc" "src/CMakeFiles/tfb.dir/tfb/stats/descriptive.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/stats/descriptive.cc.o.d"
  "/root/repo/src/tfb/stats/rng.cc" "src/CMakeFiles/tfb.dir/tfb/stats/rng.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/stats/rng.cc.o.d"
  "/root/repo/src/tfb/stl/loess.cc" "src/CMakeFiles/tfb.dir/tfb/stl/loess.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/stl/loess.cc.o.d"
  "/root/repo/src/tfb/stl/stl.cc" "src/CMakeFiles/tfb.dir/tfb/stl/stl.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/stl/stl.cc.o.d"
  "/root/repo/src/tfb/ts/csv.cc" "src/CMakeFiles/tfb.dir/tfb/ts/csv.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/ts/csv.cc.o.d"
  "/root/repo/src/tfb/ts/impute.cc" "src/CMakeFiles/tfb.dir/tfb/ts/impute.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/ts/impute.cc.o.d"
  "/root/repo/src/tfb/ts/scaler.cc" "src/CMakeFiles/tfb.dir/tfb/ts/scaler.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/ts/scaler.cc.o.d"
  "/root/repo/src/tfb/ts/split.cc" "src/CMakeFiles/tfb.dir/tfb/ts/split.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/ts/split.cc.o.d"
  "/root/repo/src/tfb/ts/time_series.cc" "src/CMakeFiles/tfb.dir/tfb/ts/time_series.cc.o" "gcc" "src/CMakeFiles/tfb.dir/tfb/ts/time_series.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
