file(REMOVE_RECURSE
  "CMakeFiles/methods_ml_test.dir/methods_ml_test.cc.o"
  "CMakeFiles/methods_ml_test.dir/methods_ml_test.cc.o.d"
  "methods_ml_test"
  "methods_ml_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/methods_ml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
