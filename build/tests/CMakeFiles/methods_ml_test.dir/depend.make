# Empty dependencies file for methods_ml_test.
# This may be replaced when dependencies are built.
