# Empty compiler generated dependencies file for forecaster_contract_test.
# This may be replaced when dependencies are built.
