file(REMOVE_RECURSE
  "CMakeFiles/forecaster_contract_test.dir/forecaster_contract_test.cc.o"
  "CMakeFiles/forecaster_contract_test.dir/forecaster_contract_test.cc.o.d"
  "forecaster_contract_test"
  "forecaster_contract_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecaster_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
