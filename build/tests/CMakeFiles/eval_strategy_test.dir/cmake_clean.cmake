file(REMOVE_RECURSE
  "CMakeFiles/eval_strategy_test.dir/eval_strategy_test.cc.o"
  "CMakeFiles/eval_strategy_test.dir/eval_strategy_test.cc.o.d"
  "eval_strategy_test"
  "eval_strategy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_strategy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
