# Empty compiler generated dependencies file for eval_strategy_test.
# This may be replaced when dependencies are built.
