file(REMOVE_RECURSE
  "CMakeFiles/methods_dl_test.dir/methods_dl_test.cc.o"
  "CMakeFiles/methods_dl_test.dir/methods_dl_test.cc.o.d"
  "methods_dl_test"
  "methods_dl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/methods_dl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
