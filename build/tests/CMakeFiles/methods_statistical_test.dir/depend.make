# Empty dependencies file for methods_statistical_test.
# This may be replaced when dependencies are built.
