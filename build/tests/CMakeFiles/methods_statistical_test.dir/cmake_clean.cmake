file(REMOVE_RECURSE
  "CMakeFiles/methods_statistical_test.dir/methods_statistical_test.cc.o"
  "CMakeFiles/methods_statistical_test.dir/methods_statistical_test.cc.o.d"
  "methods_statistical_test"
  "methods_statistical_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/methods_statistical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
