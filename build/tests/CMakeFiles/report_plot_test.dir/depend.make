# Empty dependencies file for report_plot_test.
# This may be replaced when dependencies are built.
