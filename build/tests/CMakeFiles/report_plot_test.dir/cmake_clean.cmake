file(REMOVE_RECURSE
  "CMakeFiles/report_plot_test.dir/report_plot_test.cc.o"
  "CMakeFiles/report_plot_test.dir/report_plot_test.cc.o.d"
  "report_plot_test"
  "report_plot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_plot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
