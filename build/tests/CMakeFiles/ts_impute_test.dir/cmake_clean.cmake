file(REMOVE_RECURSE
  "CMakeFiles/ts_impute_test.dir/ts_impute_test.cc.o"
  "CMakeFiles/ts_impute_test.dir/ts_impute_test.cc.o.d"
  "ts_impute_test"
  "ts_impute_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_impute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
