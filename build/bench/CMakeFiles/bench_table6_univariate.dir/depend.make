# Empty dependencies file for bench_table6_univariate.
# This may be replaced when dependencies are built.
