# Empty dependencies file for bench_fig8_radar.
# This may be replaced when dependencies are built.
