file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_radar.dir/bench_fig8_radar.cc.o"
  "CMakeFiles/bench_fig8_radar.dir/bench_fig8_radar.cc.o.d"
  "bench_fig8_radar"
  "bench_fig8_radar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_radar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
