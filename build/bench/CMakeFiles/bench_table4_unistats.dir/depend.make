# Empty dependencies file for bench_table4_unistats.
# This may be replaced when dependencies are built.
