file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_unistats.dir/bench_table4_unistats.cc.o"
  "CMakeFiles/bench_table4_unistats.dir/bench_table4_unistats.cc.o.d"
  "bench_table4_unistats"
  "bench_table4_unistats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_unistats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
