# Empty compiler generated dependencies file for bench_fig3_spread.
# This may be replaced when dependencies are built.
