file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_channel.dir/bench_fig10_channel.cc.o"
  "CMakeFiles/bench_fig10_channel.dir/bench_fig10_channel.cc.o.d"
  "bench_fig10_channel"
  "bench_fig10_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
