# Empty compiler generated dependencies file for bench_fig10_channel.
# This may be replaced when dependencies are built.
