# Empty dependencies file for bench_table2_droplast.
# This may be replaced when dependencies are built.
