file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_droplast.dir/bench_table2_droplast.cc.o"
  "CMakeFiles/bench_table2_droplast.dir/bench_table2_droplast.cc.o.d"
  "bench_table2_droplast"
  "bench_table2_droplast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_droplast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
