# Empty dependencies file for bench_table5_mvstats.
# This may be replaced when dependencies are built.
