file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_mvstats.dir/bench_table5_mvstats.cc.o"
  "CMakeFiles/bench_table5_mvstats.dir/bench_table5_mvstats.cc.o.d"
  "bench_table5_mvstats"
  "bench_table5_mvstats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_mvstats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
