file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_domains.dir/bench_fig2_domains.cc.o"
  "CMakeFiles/bench_fig2_domains.dir/bench_fig2_domains.cc.o.d"
  "bench_fig2_domains"
  "bench_fig2_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
