file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_families.dir/bench_fig9_families.cc.o"
  "CMakeFiles/bench_fig9_families.dir/bench_fig9_families.cc.o.d"
  "bench_fig9_families"
  "bench_fig9_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
