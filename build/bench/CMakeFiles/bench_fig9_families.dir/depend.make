# Empty dependencies file for bench_fig9_families.
# This may be replaced when dependencies are built.
