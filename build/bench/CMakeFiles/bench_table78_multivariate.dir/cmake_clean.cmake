file(REMOVE_RECURSE
  "CMakeFiles/bench_table78_multivariate.dir/bench_table78_multivariate.cc.o"
  "CMakeFiles/bench_table78_multivariate.dir/bench_table78_multivariate.cc.o.d"
  "bench_table78_multivariate"
  "bench_table78_multivariate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table78_multivariate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
