# Empty dependencies file for bench_table78_multivariate.
# This may be replaced when dependencies are built.
