file(REMOVE_RECURSE
  "CMakeFiles/custom_method.dir/custom_method.cpp.o"
  "CMakeFiles/custom_method.dir/custom_method.cpp.o.d"
  "custom_method"
  "custom_method.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_method.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
