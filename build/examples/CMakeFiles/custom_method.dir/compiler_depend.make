# Empty compiler generated dependencies file for custom_method.
# This may be replaced when dependencies are built.
