file(REMOVE_RECURSE
  "CMakeFiles/method_selection.dir/method_selection.cpp.o"
  "CMakeFiles/method_selection.dir/method_selection.cpp.o.d"
  "method_selection"
  "method_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/method_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
