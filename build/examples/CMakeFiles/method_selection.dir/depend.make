# Empty dependencies file for method_selection.
# This may be replaced when dependencies are built.
