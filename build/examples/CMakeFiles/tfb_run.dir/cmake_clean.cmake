file(REMOVE_RECURSE
  "CMakeFiles/tfb_run.dir/tfb_run.cpp.o"
  "CMakeFiles/tfb_run.dir/tfb_run.cpp.o.d"
  "tfb_run"
  "tfb_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfb_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
