# Empty compiler generated dependencies file for tfb_run.
# This may be replaced when dependencies are built.
