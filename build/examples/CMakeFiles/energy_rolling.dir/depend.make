# Empty dependencies file for energy_rolling.
# This may be replaced when dependencies are built.
