file(REMOVE_RECURSE
  "CMakeFiles/energy_rolling.dir/energy_rolling.cpp.o"
  "CMakeFiles/energy_rolling.dir/energy_rolling.cpp.o.d"
  "energy_rolling"
  "energy_rolling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_rolling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
